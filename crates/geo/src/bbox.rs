//! Axis-aligned bounding boxes (city regions, index extents).

use serde::{Deserialize, Serialize};

use crate::{Km, Point};

/// An axis-aligned rectangle in the planar kilometre space.
///
/// Used for the city region a scenario is generated over and as the extent
/// of a [`crate::GridIndex`]. A box is *valid* when `min.x <= max.x` and
/// `min.y <= max.y`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BoundingBox {
    pub min: Point,
    pub max: Point,
}

impl BoundingBox {
    /// Build a box from two corner points; the corners may be given in any
    /// order.
    pub fn from_corners(a: Point, b: Point) -> Self {
        BoundingBox {
            min: Point::new(a.x.min(b.x), a.y.min(b.y)),
            max: Point::new(a.x.max(b.x), a.y.max(b.y)),
        }
    }

    /// A square box `[0, side] × [0, side]` — the shape every synthetic
    /// scenario in the evaluation uses.
    pub fn square(side: Km) -> Self {
        assert!(side >= 0.0, "side must be non-negative");
        BoundingBox {
            min: Point::ORIGIN,
            max: Point::new(side, side),
        }
    }

    /// Width along x (km).
    #[inline]
    pub fn width(&self) -> Km {
        self.max.x - self.min.x
    }

    /// Height along y (km).
    #[inline]
    pub fn height(&self) -> Km {
        self.max.y - self.min.y
    }

    /// Area in km².
    #[inline]
    pub fn area(&self) -> f64 {
        self.width() * self.height()
    }

    /// Centre of the box.
    #[inline]
    pub fn center(&self) -> Point {
        self.min.midpoint(self.max)
    }

    /// Whether `p` lies inside the box (inclusive on all edges).
    #[inline]
    pub fn contains(&self, p: Point) -> bool {
        p.x >= self.min.x && p.x <= self.max.x && p.y >= self.min.y && p.y <= self.max.y
    }

    /// Clamp `p` to the closest point inside the box.
    #[inline]
    pub fn clamp(&self, p: Point) -> Point {
        Point::new(
            p.x.clamp(self.min.x, self.max.x),
            p.y.clamp(self.min.y, self.max.y),
        )
    }

    /// Grow the box by `margin` km on every side.
    pub fn expanded(&self, margin: Km) -> BoundingBox {
        BoundingBox {
            min: Point::new(self.min.x - margin, self.min.y - margin),
            max: Point::new(self.max.x + margin, self.max.y + margin),
        }
    }

    /// Smallest box containing both `self` and `other`.
    pub fn union(&self, other: &BoundingBox) -> BoundingBox {
        BoundingBox {
            min: Point::new(self.min.x.min(other.min.x), self.min.y.min(other.min.y)),
            max: Point::new(self.max.x.max(other.max.x), self.max.y.max(other.max.y)),
        }
    }

    /// Whether the circle `(center, radius)` intersects the box. Used by
    /// the grid index to prune cells during circular range queries.
    pub fn intersects_circle(&self, center: Point, radius: Km) -> bool {
        let closest = self.clamp(center);
        closest.distance_sq(center) <= radius * radius
    }

    /// Smallest box enclosing all points in the iterator, or `None` when
    /// the iterator is empty.
    pub fn enclosing<I: IntoIterator<Item = Point>>(points: I) -> Option<BoundingBox> {
        let mut it = points.into_iter();
        let first = it.next()?;
        let mut bb = BoundingBox {
            min: first,
            max: first,
        };
        for p in it {
            bb.min.x = bb.min.x.min(p.x);
            bb.min.y = bb.min.y.min(p.y);
            bb.max.x = bb.max.x.max(p.x);
            bb.max.y = bb.max.y.max(p.y);
        }
        Some(bb)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn square_box() {
        let bb = BoundingBox::square(30.0);
        assert_eq!(bb.width(), 30.0);
        assert_eq!(bb.height(), 30.0);
        assert_eq!(bb.area(), 900.0);
        assert_eq!(bb.center(), Point::new(15.0, 15.0));
    }

    #[test]
    fn from_corners_normalises_order() {
        let bb = BoundingBox::from_corners(Point::new(5.0, -1.0), Point::new(-2.0, 3.0));
        assert_eq!(bb.min, Point::new(-2.0, -1.0));
        assert_eq!(bb.max, Point::new(5.0, 3.0));
    }

    #[test]
    fn contains_is_inclusive() {
        let bb = BoundingBox::square(10.0);
        assert!(bb.contains(Point::ORIGIN));
        assert!(bb.contains(Point::new(10.0, 10.0)));
        assert!(bb.contains(Point::new(5.0, 0.0)));
        assert!(!bb.contains(Point::new(10.000_1, 5.0)));
        assert!(!bb.contains(Point::new(5.0, -0.000_1)));
    }

    #[test]
    fn clamp_projects_outside_points() {
        let bb = BoundingBox::square(10.0);
        assert_eq!(bb.clamp(Point::new(-5.0, 20.0)), Point::new(0.0, 10.0));
        assert_eq!(bb.clamp(Point::new(3.0, 4.0)), Point::new(3.0, 4.0));
    }

    #[test]
    fn circle_intersection() {
        let bb = BoundingBox::square(10.0);
        // Circle centred outside, reaching in.
        assert!(bb.intersects_circle(Point::new(-1.0, 5.0), 1.5));
        // Circle centred outside, not reaching.
        assert!(!bb.intersects_circle(Point::new(-3.0, 5.0), 1.5));
        // Circle centred inside always intersects.
        assert!(bb.intersects_circle(Point::new(5.0, 5.0), 0.01));
        // Corner case: diagonal distance matters.
        assert!(!bb.intersects_circle(Point::new(11.0, 11.0), 1.0));
        assert!(bb.intersects_circle(Point::new(11.0, 11.0), 1.5));
    }

    #[test]
    fn union_and_expand() {
        let a = BoundingBox::square(1.0);
        let b = BoundingBox::from_corners(Point::new(5.0, 5.0), Point::new(6.0, 7.0));
        let u = a.union(&b);
        assert_eq!(u.min, Point::ORIGIN);
        assert_eq!(u.max, Point::new(6.0, 7.0));
        let e = a.expanded(2.0);
        assert_eq!(e.min, Point::new(-2.0, -2.0));
        assert_eq!(e.max, Point::new(3.0, 3.0));
    }

    #[test]
    fn enclosing_points() {
        assert!(BoundingBox::enclosing(std::iter::empty()).is_none());
        let bb = BoundingBox::enclosing(vec![
            Point::new(1.0, 2.0),
            Point::new(-3.0, 0.5),
            Point::new(0.0, 9.0),
        ])
        .unwrap();
        assert_eq!(bb.min, Point::new(-3.0, 0.5));
        assert_eq!(bb.max, Point::new(1.0, 9.0));
    }

    proptest! {
        #[test]
        fn prop_clamped_point_is_contained(
            px in -100.0..100.0f64, py in -100.0..100.0f64,
            side in 0.1..50.0f64,
        ) {
            let bb = BoundingBox::square(side);
            prop_assert!(bb.contains(bb.clamp(Point::new(px, py))));
        }

        #[test]
        fn prop_union_contains_both(
            ax in -50.0..50.0f64, ay in -50.0..50.0f64,
            bx in -50.0..50.0f64, by in -50.0..50.0f64,
            cx in -50.0..50.0f64, cy in -50.0..50.0f64,
            dx in -50.0..50.0f64, dy in -50.0..50.0f64,
        ) {
            let a = BoundingBox::from_corners(Point::new(ax, ay), Point::new(bx, by));
            let b = BoundingBox::from_corners(Point::new(cx, cy), Point::new(dx, dy));
            let u = a.union(&b);
            prop_assert!(u.contains(a.min) && u.contains(a.max));
            prop_assert!(u.contains(b.min) && u.contains(b.max));
        }

        #[test]
        fn prop_contained_point_circle_intersects(
            px in 0.0..10.0f64, py in 0.0..10.0f64, r in 0.0..5.0f64,
        ) {
            let bb = BoundingBox::square(10.0);
            prop_assert!(bb.intersects_circle(Point::new(px, py), r));
        }
    }
}
