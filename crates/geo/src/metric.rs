//! Distance metrics.
//!
//! The paper's model uses Euclidean distance but notes (§II-A) that COM
//! "can be equivalently changed into the shortest path distance in road
//! networks by just changing the service range from circulars to
//! irregular shapes". [`DistanceMetric`] makes the range constraint
//! pluggable: `Manhattan` is the standard grid-road surrogate (the
//! service range becomes a diamond), and every matcher works unchanged
//! because candidate discovery still uses the Euclidean grid index — an
//! L1 ball is contained in the L2 ball of the same radius, so the grid's
//! candidates are a superset that the metric then filters exactly.

use serde::{Deserialize, Serialize};

use crate::{Km, Point};

/// How distances (and therefore service ranges and travel times) are
/// measured.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize, Default)]
pub enum DistanceMetric {
    /// Straight-line distance; circular service ranges (the paper's
    /// base model).
    #[default]
    Euclidean,
    /// L1 distance; diamond service ranges — the usual surrogate for
    /// shortest paths on a grid road network.
    Manhattan,
}

impl DistanceMetric {
    /// Distance between two points under this metric, in km.
    #[inline]
    pub fn distance(&self, a: Point, b: Point) -> Km {
        match self {
            DistanceMetric::Euclidean => a.distance(b),
            DistanceMetric::Manhattan => a.manhattan_distance(b),
        }
    }

    /// Whether `p` lies within `radius` of `center` under this metric.
    #[inline]
    pub fn covers(&self, center: Point, p: Point, radius: Km) -> bool {
        match self {
            DistanceMetric::Euclidean => center.covers(p, radius),
            DistanceMetric::Manhattan => center.manhattan_distance(p) <= radius,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn euclidean_matches_point_methods() {
        let a = Point::new(0.0, 0.0);
        let b = Point::new(3.0, 4.0);
        assert_eq!(DistanceMetric::Euclidean.distance(a, b), 5.0);
        assert!(DistanceMetric::Euclidean.covers(a, b, 5.0));
        assert!(!DistanceMetric::Euclidean.covers(a, b, 4.99));
    }

    #[test]
    fn manhattan_is_sum_of_legs() {
        let a = Point::new(0.0, 0.0);
        let b = Point::new(3.0, 4.0);
        assert_eq!(DistanceMetric::Manhattan.distance(a, b), 7.0);
        assert!(DistanceMetric::Manhattan.covers(a, b, 7.0));
        assert!(!DistanceMetric::Manhattan.covers(a, b, 6.99));
    }

    #[test]
    fn manhattan_range_is_a_diamond() {
        let c = Point::ORIGIN;
        // Axis points at distance r are covered…
        assert!(DistanceMetric::Manhattan.covers(c, Point::new(1.0, 0.0), 1.0));
        assert!(DistanceMetric::Manhattan.covers(c, Point::new(0.0, -1.0), 1.0));
        // …but the Euclidean-circle corner is not.
        let corner = Point::new(0.8, 0.8); // L2 ≈ 1.13, L1 = 1.6
        assert!(!DistanceMetric::Manhattan.covers(c, corner, 1.0));
        assert!(DistanceMetric::Euclidean.covers(c, corner, 1.2));
    }

    proptest! {
        #[test]
        fn prop_l1_ball_inside_l2_ball(
            ax in -20.0..20.0f64, ay in -20.0..20.0f64,
            bx in -20.0..20.0f64, by in -20.0..20.0f64,
            rad in 0.0..10.0f64,
        ) {
            let a = Point::new(ax, ay);
            let b = Point::new(bx, by);
            // Anything the Manhattan range covers, the Euclidean range of
            // the same radius also covers — the containment the grid
            // index's candidate generation relies on.
            if DistanceMetric::Manhattan.covers(a, b, rad) {
                prop_assert!(DistanceMetric::Euclidean.covers(a, b, rad + 1e-12));
            }
        }

        #[test]
        fn prop_metric_distances_ordered(
            ax in -20.0..20.0f64, ay in -20.0..20.0f64,
            bx in -20.0..20.0f64, by in -20.0..20.0f64,
        ) {
            let a = Point::new(ax, ay);
            let b = Point::new(bx, by);
            let l2 = DistanceMetric::Euclidean.distance(a, b);
            let l1 = DistanceMetric::Manhattan.distance(a, b);
            prop_assert!(l1 >= l2 - 1e-12);
            prop_assert!(l1 <= l2 * 2.0f64.sqrt() + 1e-9);
        }
    }
}
