//! Uniform-grid spatial index.
//!
//! The online matchers repeatedly ask, for an arriving request `r`, "which
//! idle workers have `r` inside their service circle?" — i.e. a *reverse*
//! range query where each indexed item carries its own radius. A uniform
//! grid is the right structure here: items churn constantly (workers leave
//! the waiting list on assignment and re-enter after service), cities are
//! bounded, and service radii are small and similar (0.5–2.5 km in the
//! paper's Table IV), so a cell size near the maximum radius keeps candidate
//! sets tiny.

use std::collections::{BTreeMap, HashMap};

use crate::{BoundingBox, Km, Point};

/// An item stored in the grid: an opaque `u64` id (the simulator's worker
/// id), its location, and its service radius.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GridEntry {
    pub id: u64,
    pub location: Point,
    pub radius: Km,
}

/// A uniform-grid spatial hash over a bounded region.
///
/// Supports O(1) amortised insert/remove by id and two query flavours:
///
/// * [`GridIndex::coverers`] — every item whose own circle covers a query
///   point (the paper's range constraint, worker-side radius).
/// * [`GridIndex::within`] — every item within a query-side radius of a
///   point (used by offline graph construction and diagnostics).
///
/// Items whose location falls outside the configured extent are clamped to
/// the boundary cells, so the index never loses items — queries stay exact
/// because the final distance check always uses true coordinates.
///
/// ```
/// use com_geo::{BoundingBox, GridIndex, Point};
///
/// let mut idx = GridIndex::with_expected_radius(BoundingBox::square(10.0), 1.0);
/// idx.insert(1, Point::new(5.0, 5.0), 1.0);   // worker 1, 1 km radius
/// idx.insert(2, Point::new(9.0, 9.0), 0.5);
///
/// // Which workers can serve a request at (5.4, 5.0)?
/// let coverers = idx.coverers(Point::new(5.4, 5.0));
/// assert_eq!(coverers.len(), 1);
/// assert_eq!(coverers[0].id, 1);
///
/// idx.remove(1);
/// assert!(idx.nearest_coverer(Point::new(5.4, 5.0)).is_none());
/// ```
#[derive(Debug, Clone)]
pub struct GridIndex {
    extent: BoundingBox,
    cell_size: Km,
    cols: usize,
    rows: usize,
    /// cell index -> entries in that cell.
    cells: Vec<Vec<GridEntry>>,
    /// id -> cell index; removal scans the (small) cell bucket.
    locations: HashMap<u64, usize>,
    /// Largest radius currently indexed; determines the query ring for
    /// `coverers`.
    max_radius: Km,
    /// Live items per radius, keyed by `f64::to_bits` (monotone for the
    /// non-negative radii we store, so the largest key IS the largest
    /// radius). Lets `max_radius` *shrink* when the last wide-radius item
    /// leaves, instead of every later query scanning a ring sized for a
    /// worker who is long gone.
    radius_counts: BTreeMap<u64, u32>,
    len: usize,
}

/// Key for `radius_counts`: non-negative finite bits order like the floats
/// themselves. Negative zero (and any junk that slips through the
/// debug-only assertions) is normalised so the bit order stays monotone.
#[inline]
fn radius_key(radius: Km) -> u64 {
    if radius > 0.0 {
        radius.to_bits()
    } else {
        0
    }
}

impl GridIndex {
    /// Create an index over `extent` with the given cell size (km).
    ///
    /// # Panics
    /// Panics if `cell_size` is not strictly positive or the extent is
    /// degenerate in a way that yields zero cells.
    pub fn new(extent: BoundingBox, cell_size: Km) -> Self {
        assert!(
            cell_size > 0.0 && cell_size.is_finite(),
            "cell_size must be positive and finite"
        );
        let cols = ((extent.width() / cell_size).ceil() as usize).max(1);
        let rows = ((extent.height() / cell_size).ceil() as usize).max(1);
        GridIndex {
            extent,
            cell_size,
            cols,
            rows,
            cells: vec![Vec::new(); cols * rows],
            locations: HashMap::new(),
            max_radius: 0.0,
            radius_counts: BTreeMap::new(),
            len: 0,
        }
    }

    /// Convenience constructor: pick a cell size close to the expected
    /// service radius (a good default — each `coverers` query then touches
    /// at most ~9 cells).
    pub fn with_expected_radius(extent: BoundingBox, expected_radius: Km) -> Self {
        Self::new(extent, expected_radius.max(0.05))
    }

    /// Number of items currently indexed.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the index is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The extent this index covers.
    pub fn extent(&self) -> BoundingBox {
        self.extent
    }

    #[inline]
    fn cell_coords(&self, p: Point) -> (usize, usize) {
        let cx = ((p.x - self.extent.min.x) / self.cell_size).floor();
        let cy = ((p.y - self.extent.min.y) / self.cell_size).floor();
        let cx = (cx.max(0.0) as usize).min(self.cols - 1);
        let cy = (cy.max(0.0) as usize).min(self.rows - 1);
        (cx, cy)
    }

    #[inline]
    fn cell_index(&self, p: Point) -> usize {
        let (cx, cy) = self.cell_coords(p);
        cy * self.cols + cx
    }

    /// Insert an item. Replaces any existing item with the same id.
    pub fn insert(&mut self, id: u64, location: Point, radius: Km) {
        debug_assert!(location.is_finite(), "location must be finite");
        debug_assert!(radius >= 0.0, "radius must be non-negative");
        if self.locations.contains_key(&id) {
            self.remove(id);
        }
        let cell = self.cell_index(location);
        self.cells[cell].push(GridEntry {
            id,
            location,
            radius,
        });
        self.locations.insert(id, cell);
        *self.radius_counts.entry(radius_key(radius)).or_insert(0) += 1;
        self.max_radius = self.max_radius.max(radius);
        self.len += 1;
    }

    /// Remove an item by id. Returns the entry if it was present.
    ///
    /// When the departing item carried the largest live radius, the query
    /// ring bound shrinks back to the largest *remaining* radius, so
    /// subsequent `coverers`/`nearest_coverer` calls stop scanning cells
    /// only that item could have reached. The covering candidate set is
    /// unaffected either way (the bound is an over-approximation); only
    /// the number of cells scanned changes.
    pub fn remove(&mut self, id: u64) -> Option<GridEntry> {
        let cell = self.locations.remove(&id)?;
        let bucket = &mut self.cells[cell];
        let pos = bucket.iter().position(|e| e.id == id)?;
        let entry = bucket.swap_remove(pos);
        let key = radius_key(entry.radius);
        if let Some(count) = self.radius_counts.get_mut(&key) {
            *count -= 1;
            if *count == 0 {
                self.radius_counts.remove(&key);
            }
        }
        self.max_radius = self
            .radius_counts
            .last_key_value()
            .map(|(&bits, _)| f64::from_bits(bits))
            .unwrap_or(0.0);
        self.len -= 1;
        Some(entry)
    }

    /// The current query-ring bound: the largest radius among live items
    /// (0 when empty).
    #[inline]
    pub fn max_radius(&self) -> Km {
        self.max_radius
    }

    /// Whether an item with this id is present.
    pub fn contains(&self, id: u64) -> bool {
        self.locations.contains_key(&id)
    }

    /// Look up an item by id.
    pub fn get(&self, id: u64) -> Option<GridEntry> {
        let cell = *self.locations.get(&id)?;
        self.cells[cell].iter().find(|e| e.id == id).copied()
    }

    /// Visit every cell whose box intersects the circle `(center, radius)`;
    /// returns the number of cells visited (telemetry).
    fn for_cells_in_circle<F: FnMut(&[GridEntry])>(
        &self,
        center: Point,
        radius: Km,
        mut f: F,
    ) -> usize {
        let r = radius.max(0.0);
        let lo = Point::new(center.x - r, center.y - r);
        let hi = Point::new(center.x + r, center.y + r);
        let (cx0, cy0) = self.cell_coords(lo);
        let (cx1, cy1) = self.cell_coords(hi);
        for cy in cy0..=cy1 {
            for cx in cx0..=cx1 {
                f(&self.cells[cy * self.cols + cx]);
            }
        }
        (cy1 - cy0 + 1) * (cx1 - cx0 + 1)
    }

    /// All items whose *own* service circle covers `point` — the worker-side
    /// range constraint. Results are appended to `out` (cleared first) so
    /// hot loops can reuse the buffer.
    pub fn coverers_into(&self, point: Point, out: &mut Vec<GridEntry>) {
        out.clear();
        let cells = self.for_cells_in_circle(point, self.max_radius, |bucket| {
            for e in bucket {
                if e.location.covers(point, e.radius) {
                    out.push(*e);
                }
            }
        });
        com_obs::counter_add("grid.cells_scanned", cells as u64);
        com_obs::counter_add("grid.candidates", out.len() as u64);
    }

    /// Allocating convenience wrapper around [`GridIndex::coverers_into`].
    pub fn coverers(&self, point: Point) -> Vec<GridEntry> {
        let mut out = Vec::new();
        self.coverers_into(point, &mut out);
        out
    }

    /// All items within `radius` km of `point` (query-side radius),
    /// appended to `out` (cleared first).
    pub fn within_into(&self, point: Point, radius: Km, out: &mut Vec<GridEntry>) {
        out.clear();
        let cells = self.for_cells_in_circle(point, radius, |bucket| {
            for e in bucket {
                if point.covers(e.location, radius) {
                    out.push(*e);
                }
            }
        });
        com_obs::counter_add("grid.cells_scanned", cells as u64);
        com_obs::counter_add("grid.candidates", out.len() as u64);
    }

    /// Allocating convenience wrapper around [`GridIndex::within_into`].
    pub fn within(&self, point: Point, radius: Km) -> Vec<GridEntry> {
        let mut out = Vec::new();
        self.within_into(point, radius, &mut out);
        out
    }

    /// The nearest item whose own circle covers `point`, if any. Both
    /// DemCOM and the TOTA baseline assign an incoming request to the
    /// *nearest* feasible worker, so this is the hottest query in the
    /// system.
    pub fn nearest_coverer(&self, point: Point) -> Option<GridEntry> {
        let mut best: Option<(f64, GridEntry)> = None;
        let mut candidates = 0u64;
        let cells = self.for_cells_in_circle(point, self.max_radius, |bucket| {
            for e in bucket {
                if e.location.covers(point, e.radius) {
                    candidates += 1;
                    let d = e.location.distance_sq(point);
                    let better = match best {
                        None => true,
                        Some((bd, be)) => d < bd || (d == bd && e.id < be.id),
                    };
                    if better {
                        best = Some((d, *e));
                    }
                }
            }
        });
        com_obs::counter_add("grid.cells_scanned", cells as u64);
        com_obs::counter_add("grid.candidates", candidates);
        best.map(|(_, e)| e)
    }

    /// Iterate over all entries (arbitrary order).
    pub fn iter(&self) -> impl Iterator<Item = &GridEntry> {
        self.cells.iter().flatten()
    }

    /// Remove all items, keeping the allocated cell structure.
    pub fn clear(&mut self) {
        for c in &mut self.cells {
            c.clear();
        }
        self.locations.clear();
        self.radius_counts.clear();
        // With live-radius tracking there is nothing to retain: an empty
        // index scans exactly one cell per query until items return.
        self.max_radius = 0.0;
        self.len = 0;
    }

    /// Approximate heap footprint in bytes (for the memory metric).
    pub fn approx_bytes(&self) -> usize {
        use std::mem::size_of;
        let cells: usize = self
            .cells
            .iter()
            .map(|c| c.capacity() * size_of::<GridEntry>())
            .sum();
        cells
            + self.cells.capacity() * size_of::<Vec<GridEntry>>()
            + self.locations.capacity() * (size_of::<u64>() + size_of::<usize>() + 16)
            + self.radius_counts.len() * (size_of::<u64>() + size_of::<u32>() + 16)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn brute_coverers(items: &[GridEntry], p: Point) -> Vec<u64> {
        let mut ids: Vec<u64> = items
            .iter()
            .filter(|e| e.location.covers(p, e.radius))
            .map(|e| e.id)
            .collect();
        ids.sort_unstable();
        ids
    }

    #[test]
    fn insert_query_remove_roundtrip() {
        let mut g = GridIndex::new(BoundingBox::square(10.0), 1.0);
        g.insert(1, Point::new(5.0, 5.0), 1.0);
        g.insert(2, Point::new(5.5, 5.0), 0.4);
        g.insert(3, Point::new(9.0, 9.0), 1.0);
        assert_eq!(g.len(), 3);

        let q = Point::new(5.2, 5.0);
        let mut ids: Vec<u64> = g.coverers(q).iter().map(|e| e.id).collect();
        ids.sort_unstable();
        assert_eq!(ids, vec![1, 2]);

        assert!(g.remove(2).is_some());
        assert!(!g.contains(2));
        let ids: Vec<u64> = g.coverers(q).iter().map(|e| e.id).collect();
        assert_eq!(ids, vec![1]);
        assert!(g.remove(2).is_none());
    }

    #[test]
    fn insert_same_id_replaces() {
        let mut g = GridIndex::new(BoundingBox::square(10.0), 1.0);
        g.insert(7, Point::new(1.0, 1.0), 1.0);
        g.insert(7, Point::new(8.0, 8.0), 1.0);
        assert_eq!(g.len(), 1);
        assert!(g.coverers(Point::new(1.0, 1.0)).is_empty());
        assert_eq!(g.coverers(Point::new(8.0, 8.0)).len(), 1);
        assert_eq!(g.get(7).unwrap().location, Point::new(8.0, 8.0));
    }

    #[test]
    fn nearest_coverer_picks_closest() {
        let mut g = GridIndex::new(BoundingBox::square(10.0), 1.0);
        g.insert(1, Point::new(5.0, 5.0), 2.0);
        g.insert(2, Point::new(6.0, 5.0), 2.0);
        g.insert(3, Point::new(0.0, 0.0), 1.0); // out of range
        let n = g.nearest_coverer(Point::new(5.8, 5.0)).unwrap();
        assert_eq!(n.id, 2);
    }

    #[test]
    fn nearest_coverer_ties_break_by_id() {
        let mut g = GridIndex::new(BoundingBox::square(10.0), 1.0);
        g.insert(9, Point::new(4.0, 5.0), 2.0);
        g.insert(4, Point::new(6.0, 5.0), 2.0);
        let n = g.nearest_coverer(Point::new(5.0, 5.0)).unwrap();
        assert_eq!(n.id, 4);
    }

    #[test]
    fn items_outside_extent_are_still_found() {
        let mut g = GridIndex::new(BoundingBox::square(10.0), 1.0);
        // Clamped into the boundary cell but true coordinates preserved.
        g.insert(1, Point::new(12.0, 12.0), 3.0);
        assert_eq!(g.coverers(Point::new(10.0, 10.0)).len(), 1);
        assert!(g.coverers(Point::new(5.0, 5.0)).is_empty());
    }

    #[test]
    fn within_query() {
        let mut g = GridIndex::new(BoundingBox::square(10.0), 1.0);
        g.insert(1, Point::new(2.0, 2.0), 0.1);
        g.insert(2, Point::new(3.0, 2.0), 0.1);
        g.insert(3, Point::new(7.0, 7.0), 0.1);
        let mut ids: Vec<u64> = g
            .within(Point::new(2.5, 2.0), 0.6)
            .iter()
            .map(|e| e.id)
            .collect();
        ids.sort_unstable();
        assert_eq!(ids, vec![1, 2]);
    }

    #[test]
    fn clear_retains_capacity_and_correctness() {
        let mut g = GridIndex::new(BoundingBox::square(10.0), 1.0);
        g.insert(1, Point::new(5.0, 5.0), 2.0);
        g.clear();
        assert!(g.is_empty());
        assert_eq!(g.max_radius(), 0.0);
        g.insert(2, Point::new(5.0, 5.0), 0.5);
        assert_eq!(g.coverers(Point::new(5.2, 5.0)).len(), 1);
    }

    #[test]
    fn max_radius_shrinks_when_wide_items_leave() {
        let mut g = GridIndex::new(BoundingBox::square(10.0), 1.0);
        g.insert(1, Point::new(5.0, 5.0), 0.5);
        g.insert(2, Point::new(1.0, 1.0), 4.0);
        g.insert(3, Point::new(9.0, 9.0), 4.0);
        assert_eq!(g.max_radius(), 4.0);
        g.remove(2);
        assert_eq!(g.max_radius(), 4.0); // one 4.0-radius item still live
        g.remove(3);
        assert_eq!(g.max_radius(), 0.5);
        g.remove(1);
        assert_eq!(g.max_radius(), 0.0);
    }

    #[test]
    fn query_cell_counts_drop_after_wide_worker_leaves() {
        // The cells-scanned telemetry is the observable for ring size:
        // with a 4 km radius item live, a coverers query rings 9x9 cells;
        // once it leaves, the remaining 0.5 km bound rings 3x3. The
        // collector is thread-local, so parallel tests cannot bleed into
        // these counters.
        com_obs::install();
        com_obs::begin_run("grid-shrink-test");
        let mut g = GridIndex::new(BoundingBox::square(20.0), 1.0);
        g.insert(1, Point::new(10.0, 10.0), 0.5);
        g.insert(2, Point::new(3.0, 3.0), 4.0);
        let q = Point::new(10.2, 10.0);

        let cells_at = |label: &str| {
            let t = com_obs::snapshot_run().expect("collector active");
            t.counter("grid.cells_scanned")
                .unwrap_or_else(|| panic!("no cells_scanned counter {label}"))
        };
        let before_query = com_obs::snapshot_run()
            .expect("collector active")
            .counter("grid.cells_scanned")
            .unwrap_or(0);
        assert_eq!(g.coverers(q).len(), 1);
        let wide = cells_at("wide") - before_query;

        g.remove(2);
        let mid = cells_at("mid");
        assert_eq!(g.coverers(q).len(), 1);
        let narrow = cells_at("narrow") - mid;

        assert!(
            narrow < wide,
            "ring did not shrink: {narrow} cells vs {wide} before removal"
        );
        com_obs::end_run();
        com_obs::uninstall();
    }

    #[test]
    fn randomized_against_brute_force() {
        let mut rng = StdRng::seed_from_u64(42);
        let extent = BoundingBox::square(20.0);
        let mut g = GridIndex::new(extent, 1.0);
        let mut items = Vec::new();
        for id in 0..500u64 {
            let p = Point::new(rng.random_range(0.0..20.0), rng.random_range(0.0..20.0));
            let r = rng.random_range(0.0..2.5);
            g.insert(id, p, r);
            items.push(GridEntry {
                id,
                location: p,
                radius: r,
            });
        }
        // Remove a random subset.
        for id in 0..500u64 {
            if rng.random_range(0.0..1.0) < 0.3 {
                g.remove(id);
                items.retain(|e| e.id != id);
            }
        }
        for _ in 0..200 {
            let q = Point::new(rng.random_range(0.0..20.0), rng.random_range(0.0..20.0));
            let mut got: Vec<u64> = g.coverers(q).iter().map(|e| e.id).collect();
            got.sort_unstable();
            assert_eq!(got, brute_coverers(&items, q));

            let nearest = g.nearest_coverer(q).map(|e| e.id);
            let brute_nearest = items
                .iter()
                .filter(|e| e.location.covers(q, e.radius))
                .min_by(|a, b| {
                    a.location
                        .distance_sq(q)
                        .partial_cmp(&b.location.distance_sq(q))
                        .unwrap()
                        .then(a.id.cmp(&b.id))
                })
                .map(|e| e.id);
            assert_eq!(nearest, brute_nearest);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]
        #[test]
        fn prop_grid_matches_brute_force(
            points in proptest::collection::vec(
                (0.0..15.0f64, 0.0..15.0f64, 0.0..2.0f64), 1..80),
            qx in 0.0..15.0f64, qy in 0.0..15.0f64,
            cell in 0.3..3.0f64,
        ) {
            let mut g = GridIndex::new(BoundingBox::square(15.0), cell);
            let mut items = Vec::new();
            for (i, (x, y, r)) in points.iter().enumerate() {
                g.insert(i as u64, Point::new(*x, *y), *r);
                items.push(GridEntry { id: i as u64, location: Point::new(*x, *y), radius: *r });
            }
            let q = Point::new(qx, qy);
            let mut got: Vec<u64> = g.coverers(q).iter().map(|e| e.id).collect();
            got.sort_unstable();
            prop_assert_eq!(got, brute_coverers(&items, q));
        }

        #[test]
        fn prop_len_tracks_inserts_and_removes(
            ops in proptest::collection::vec((0u64..20, proptest::bool::ANY), 0..200),
        ) {
            let mut g = GridIndex::new(BoundingBox::square(5.0), 1.0);
            let mut present = std::collections::HashSet::new();
            for (id, is_insert) in ops {
                if is_insert {
                    g.insert(id, Point::new(1.0, 1.0), 0.5);
                    present.insert(id);
                } else {
                    g.remove(id);
                    present.remove(&id);
                }
                prop_assert_eq!(g.len(), present.len());
            }
        }
    }
}
