//! Latitude/longitude support.
//!
//! The paper's datasets are GPS traces (Chengdu and Xi'an). The matching
//! algorithms operate on a planar kilometre space, so trace coordinates are
//! projected with a local equirectangular projection centred on the city —
//! accurate to well under 1% over a ~50 km metro area, which is far below
//! the noise floor of the experiments.

use serde::{Deserialize, Serialize};

use crate::{Km, Point};

/// Mean Earth radius in kilometres (IUGG).
pub const EARTH_RADIUS_KM: f64 = 6371.0088;

/// A WGS-84 style latitude/longitude pair in degrees.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GeoPoint {
    pub lat_deg: f64,
    pub lon_deg: f64,
}

impl GeoPoint {
    /// Construct a geographic point. Latitude must be in `[-90, 90]` and
    /// longitude in `[-180, 180]`.
    pub fn new(lat_deg: f64, lon_deg: f64) -> Self {
        assert!(
            (-90.0..=90.0).contains(&lat_deg),
            "latitude out of range: {lat_deg}"
        );
        assert!(
            (-180.0..=180.0).contains(&lon_deg),
            "longitude out of range: {lon_deg}"
        );
        GeoPoint { lat_deg, lon_deg }
    }

    /// Great-circle (haversine) distance to `other` in kilometres.
    pub fn haversine_km(&self, other: GeoPoint) -> Km {
        let lat1 = self.lat_deg.to_radians();
        let lat2 = other.lat_deg.to_radians();
        let dlat = (other.lat_deg - self.lat_deg).to_radians();
        let dlon = (other.lon_deg - self.lon_deg).to_radians();
        let a = (dlat / 2.0).sin().powi(2) + lat1.cos() * lat2.cos() * (dlon / 2.0).sin().powi(2);
        2.0 * EARTH_RADIUS_KM * a.sqrt().asin()
    }
}

/// A local equirectangular projection centred on a reference point.
///
/// `x` grows eastward and `y` northward, both in kilometres from the
/// reference. The inverse is exact for the forward map, making round-trips
/// lossless up to floating-point error.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LocalProjection {
    origin: GeoPoint,
    /// km per degree of longitude at the reference latitude.
    km_per_lon_deg: f64,
    /// km per degree of latitude.
    km_per_lat_deg: f64,
}

impl LocalProjection {
    /// Build a projection centred on `origin`.
    pub fn centered_on(origin: GeoPoint) -> Self {
        let km_per_lat_deg = EARTH_RADIUS_KM * std::f64::consts::PI / 180.0;
        let km_per_lon_deg = km_per_lat_deg * origin.lat_deg.to_radians().cos();
        LocalProjection {
            origin,
            km_per_lon_deg,
            km_per_lat_deg,
        }
    }

    /// The projection origin.
    pub fn origin(&self) -> GeoPoint {
        self.origin
    }

    /// Project a geographic point into the local plane (km east/north of
    /// the origin).
    pub fn project(&self, g: GeoPoint) -> Point {
        Point::new(
            (g.lon_deg - self.origin.lon_deg) * self.km_per_lon_deg,
            (g.lat_deg - self.origin.lat_deg) * self.km_per_lat_deg,
        )
    }

    /// Invert a planar point back to latitude/longitude.
    pub fn unproject(&self, p: Point) -> GeoPoint {
        GeoPoint {
            lat_deg: self.origin.lat_deg + p.y / self.km_per_lat_deg,
            lon_deg: self.origin.lon_deg + p.x / self.km_per_lon_deg,
        }
    }
}

/// City reference coordinates used by the dataset profiles.
pub mod cities {
    use super::GeoPoint;

    /// Chengdu city centre (Tianfu Square).
    pub const CHENGDU: GeoPoint = GeoPoint {
        lat_deg: 30.6570,
        lon_deg: 104.0650,
    };

    /// Xi'an city centre (Bell Tower).
    pub const XIAN: GeoPoint = GeoPoint {
        lat_deg: 34.2610,
        lon_deg: 108.9424,
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn haversine_known_distance() {
        // Chengdu <-> Xi'an is roughly 600 km as the crow flies.
        let d = cities::CHENGDU.haversine_km(cities::XIAN);
        assert!(
            (550.0..650.0).contains(&d),
            "Chengdu–Xi'an distance {d} km out of expected band"
        );
    }

    #[test]
    fn haversine_zero_for_same_point() {
        assert_eq!(cities::CHENGDU.haversine_km(cities::CHENGDU), 0.0);
    }

    #[test]
    fn haversine_symmetric() {
        let a = GeoPoint::new(30.0, 104.0);
        let b = GeoPoint::new(30.5, 104.5);
        assert!((a.haversine_km(b) - b.haversine_km(a)).abs() < 1e-12);
    }

    #[test]
    fn projection_roundtrip() {
        let proj = LocalProjection::centered_on(cities::CHENGDU);
        let g = GeoPoint::new(30.70, 104.10);
        let p = proj.project(g);
        let back = proj.unproject(p);
        assert!((back.lat_deg - g.lat_deg).abs() < 1e-12);
        assert!((back.lon_deg - g.lon_deg).abs() < 1e-12);
    }

    #[test]
    fn projection_origin_maps_to_zero() {
        let proj = LocalProjection::centered_on(cities::XIAN);
        let p = proj.project(cities::XIAN);
        assert_eq!(p, Point::ORIGIN);
    }

    #[test]
    fn projection_distance_close_to_haversine_locally() {
        let proj = LocalProjection::centered_on(cities::CHENGDU);
        let a = GeoPoint::new(30.60, 104.00);
        let b = GeoPoint::new(30.72, 104.15);
        let planar = proj.project(a).distance(proj.project(b));
        let sphere = a.haversine_km(b);
        let rel_err = (planar - sphere).abs() / sphere;
        assert!(
            rel_err < 0.01,
            "projection error {rel_err} too large for a metro-scale region"
        );
    }

    #[test]
    #[should_panic(expected = "latitude out of range")]
    fn rejects_bad_latitude() {
        GeoPoint::new(91.0, 0.0);
    }

    #[test]
    #[should_panic(expected = "longitude out of range")]
    fn rejects_bad_longitude() {
        GeoPoint::new(0.0, 200.0);
    }
}
