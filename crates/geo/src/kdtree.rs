//! A 2-D kd-tree with the same query surface as [`crate::GridIndex`].
//!
//! The grid index is the workspace default (service radii are small and
//! uniform, cities are bounded); this kd-tree is the classic alternative
//! for *non-uniform* densities and serves as the design-choice ablation
//! in the spatial benchmarks. Churn is handled log-structured: removals
//! tombstone, insertions go to a small overflow vector, and the tree
//! rebuilds itself once the dead + overflow fraction passes one half —
//! amortised `O(log n)` per operation with exact queries at all times.

use std::collections::HashMap;

use crate::{GridEntry, Km, Point};

#[derive(Debug, Clone)]
struct KdNode {
    entry: GridEntry,
    /// Split axis: 0 = x, 1 = y.
    axis: u8,
    /// Tombstone: the item was removed (or re-inserted elsewhere).
    dead: bool,
    left: Option<usize>,
    right: Option<usize>,
}

/// A kd-tree over items with per-item radii (workers), answering
/// "which items' circles cover this point?" and "which covering item is
/// nearest?".
#[derive(Debug, Clone, Default)]
pub struct KdTree {
    nodes: Vec<KdNode>,
    root: Option<usize>,
    /// Live membership.
    alive: HashMap<u64, GridEntry>,
    /// id → tree-node index, for tree residents only.
    tree_pos: HashMap<u64, usize>,
    /// Entries inserted since the last rebuild, scanned linearly.
    overflow: Vec<u64>,
    /// Number of tombstoned tree nodes.
    dead: usize,
    max_radius: Km,
}

impl KdTree {
    /// An empty tree.
    pub fn new() -> Self {
        Self::default()
    }

    /// Bulk-build from entries.
    pub fn build(entries: Vec<GridEntry>) -> Self {
        let mut t = Self::new();
        for e in &entries {
            t.alive.insert(e.id, *e);
            t.max_radius = t.max_radius.max(e.radius);
        }
        t.rebuild();
        t
    }

    /// Number of live items.
    pub fn len(&self) -> usize {
        self.alive.len()
    }

    /// Whether the tree is empty.
    pub fn is_empty(&self) -> bool {
        self.alive.is_empty()
    }

    /// Insert (replacing any entry with the same id).
    pub fn insert(&mut self, id: u64, location: Point, radius: Km) {
        debug_assert!(location.is_finite());
        if self.alive.contains_key(&id) {
            self.remove(id);
        }
        let entry = GridEntry {
            id,
            location,
            radius,
        };
        self.alive.insert(id, entry);
        self.max_radius = self.max_radius.max(radius);
        self.overflow.push(id);
        self.maybe_rebuild();
    }

    /// Remove by id; returns the entry if present.
    pub fn remove(&mut self, id: u64) -> Option<GridEntry> {
        let entry = self.alive.remove(&id)?;
        if let Some(node) = self.tree_pos.remove(&id) {
            self.nodes[node].dead = true;
            self.dead += 1;
        } else {
            let pos = self
                .overflow
                .iter()
                .position(|&o| o == id)
                .expect("live non-tree item must be in the overflow");
            self.overflow.swap_remove(pos);
        }
        self.maybe_rebuild();
        Some(entry)
    }

    /// Whether an id is present.
    pub fn contains(&self, id: u64) -> bool {
        self.alive.contains_key(&id)
    }

    fn maybe_rebuild(&mut self) {
        let churn = self.dead + self.overflow.len();
        if churn > self.alive.len() / 2 && churn > 16 {
            self.rebuild();
        }
    }

    fn rebuild(&mut self) {
        let mut entries: Vec<GridEntry> = self.alive.values().copied().collect();
        // Deterministic layout regardless of hash order.
        entries.sort_by_key(|e| e.id);
        self.nodes.clear();
        self.overflow.clear();
        self.dead = 0;
        self.root = Self::build_rec(&mut self.nodes, &mut entries[..], 0);
        self.tree_pos = self
            .nodes
            .iter()
            .enumerate()
            .map(|(i, n)| (n.entry.id, i))
            .collect();
        // max_radius is recomputed exactly on rebuild (it only ever grows
        // between rebuilds, which keeps queries correct but conservative).
        self.max_radius = self.alive.values().map(|e| e.radius).fold(0.0, f64::max);
    }

    fn build_rec(nodes: &mut Vec<KdNode>, slice: &mut [GridEntry], depth: u8) -> Option<usize> {
        if slice.is_empty() {
            return None;
        }
        let axis = depth % 2;
        slice.sort_by(|a, b| {
            let (ka, kb) = if axis == 0 {
                (a.location.x, b.location.x)
            } else {
                (a.location.y, b.location.y)
            };
            ka.total_cmp(&kb).then(a.id.cmp(&b.id))
        });
        let mid = slice.len() / 2;
        let entry = slice[mid];
        let idx = nodes.len();
        nodes.push(KdNode {
            entry,
            axis,
            dead: false,
            left: None,
            right: None,
        });
        // Recurse after reserving our slot (children indices fix up).
        let (l, r) = slice.split_at_mut(mid);
        let left = Self::build_rec(nodes, l, depth + 1);
        let right = Self::build_rec(nodes, &mut r[1..], depth + 1);
        nodes[idx].left = left;
        nodes[idx].right = right;
        Some(idx)
    }

    /// Returns the number of tree nodes + overflow entries visited
    /// (telemetry).
    fn visit_within<F: FnMut(&GridEntry)>(&self, point: Point, reach: Km, f: &mut F) -> usize {
        let mut visited = 0usize;
        let mut stack = Vec::with_capacity(32);
        if let Some(r) = self.root {
            stack.push(r);
        }
        while let Some(i) = stack.pop() {
            visited += 1;
            let node = &self.nodes[i];
            let e = &node.entry;
            if !node.dead {
                f(e);
            }
            let (coord, split) = if node.axis == 0 {
                (point.x, e.location.x)
            } else {
                (point.y, e.location.y)
            };
            if coord - reach <= split {
                if let Some(l) = node.left {
                    stack.push(l);
                }
            }
            if coord + reach >= split {
                if let Some(r) = node.right {
                    stack.push(r);
                }
            }
        }
        for id in &self.overflow {
            if let Some(e) = self.alive.get(id) {
                visited += 1;
                f(e);
            }
        }
        visited
    }

    /// All items whose own circle covers `point`, into `out` (cleared).
    pub fn coverers_into(&self, point: Point, out: &mut Vec<GridEntry>) {
        out.clear();
        let visited = self.visit_within(point, self.max_radius, &mut |e| {
            if e.location.covers(point, e.radius) {
                out.push(*e);
            }
        });
        com_obs::counter_add("kdtree.nodes_visited", visited as u64);
        com_obs::counter_add("kdtree.candidates", out.len() as u64);
    }

    /// Allocating wrapper around [`KdTree::coverers_into`].
    pub fn coverers(&self, point: Point) -> Vec<GridEntry> {
        let mut out = Vec::new();
        self.coverers_into(point, &mut out);
        out
    }

    /// The nearest item whose circle covers `point` (ties by id).
    pub fn nearest_coverer(&self, point: Point) -> Option<GridEntry> {
        let mut best: Option<(f64, GridEntry)> = None;
        let mut candidates = 0u64;
        let visited = self.visit_within(point, self.max_radius, &mut |e| {
            if e.location.covers(point, e.radius) {
                candidates += 1;
                let d = e.location.distance_sq(point);
                let better = match best {
                    None => true,
                    Some((bd, be)) => d < bd || (d == bd && e.id < be.id),
                };
                if better {
                    best = Some((d, *e));
                }
            }
        });
        com_obs::counter_add("kdtree.nodes_visited", visited as u64);
        com_obs::counter_add("kdtree.candidates", candidates);
        best.map(|(_, e)| e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{BoundingBox, GridIndex};
    use proptest::prelude::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    #[test]
    fn build_and_query() {
        let t = KdTree::build(vec![
            GridEntry {
                id: 1,
                location: Point::new(5.0, 5.0),
                radius: 1.0,
            },
            GridEntry {
                id: 2,
                location: Point::new(5.5, 5.0),
                radius: 0.4,
            },
            GridEntry {
                id: 3,
                location: Point::new(9.0, 9.0),
                radius: 1.0,
            },
        ]);
        let mut ids: Vec<u64> = t
            .coverers(Point::new(5.2, 5.0))
            .iter()
            .map(|e| e.id)
            .collect();
        ids.sort_unstable();
        assert_eq!(ids, vec![1, 2]);
        // Entry 1 sits 0.2 km away, entry 2 0.3 km: 1 is nearest.
        assert_eq!(t.nearest_coverer(Point::new(5.2, 5.0)).unwrap().id, 1);
    }

    #[test]
    fn insert_remove_and_tombstones() {
        let mut t = KdTree::build(
            (0..40)
                .map(|i| GridEntry {
                    id: i,
                    location: Point::new(i as f64 * 0.2, 1.0),
                    radius: 0.5,
                })
                .collect(),
        );
        assert_eq!(t.len(), 40);
        t.remove(0);
        t.remove(1);
        t.insert(100, Point::new(1.0, 1.0), 0.5);
        assert!(!t.contains(0));
        assert!(t.contains(100));
        assert_eq!(t.len(), 39);
        let ids: Vec<u64> = t
            .coverers(Point::new(0.1, 1.0))
            .iter()
            .map(|e| e.id)
            .collect();
        assert!(!ids.contains(&0));
    }

    #[test]
    fn reinsert_moves_the_item() {
        let mut t = KdTree::new();
        t.insert(7, Point::new(1.0, 1.0), 1.0);
        t.insert(7, Point::new(8.0, 8.0), 1.0);
        assert_eq!(t.len(), 1);
        assert!(t.coverers(Point::new(1.0, 1.0)).is_empty());
        assert_eq!(t.coverers(Point::new(8.0, 8.0)).len(), 1);
    }

    #[test]
    fn heavy_churn_matches_grid_index() {
        let mut rng = StdRng::seed_from_u64(99);
        let mut tree = KdTree::new();
        let mut grid = GridIndex::new(BoundingBox::square(20.0), 1.0);
        for id in 0..600u64 {
            let p = Point::new(rng.random_range(0.0..20.0), rng.random_range(0.0..20.0));
            let r = rng.random_range(0.1..2.0);
            tree.insert(id, p, r);
            grid.insert(id, p, r);
        }
        for round in 0..4 {
            for id in 0..600u64 {
                if rng.random_range(0.0..1.0) < 0.4 {
                    tree.remove(id);
                    grid.remove(id);
                } else if rng.random_range(0.0..1.0) < 0.2 {
                    let p = Point::new(rng.random_range(0.0..20.0), rng.random_range(0.0..20.0));
                    tree.insert(id, p, 1.0);
                    grid.insert(id, p, 1.0);
                }
            }
            for _ in 0..100 {
                let q = Point::new(rng.random_range(0.0..20.0), rng.random_range(0.0..20.0));
                let mut a: Vec<u64> = tree.coverers(q).iter().map(|e| e.id).collect();
                let mut b: Vec<u64> = grid.coverers(q).iter().map(|e| e.id).collect();
                a.sort_unstable();
                b.sort_unstable();
                assert_eq!(a, b, "round {round} query {q}");
                assert_eq!(
                    tree.nearest_coverer(q).map(|e| e.id),
                    grid.nearest_coverer(q).map(|e| e.id),
                );
            }
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(48))]
        #[test]
        fn prop_matches_brute_force(
            points in proptest::collection::vec(
                (0.0..15.0f64, 0.0..15.0f64, 0.0..2.0f64), 1..60),
            qx in 0.0..15.0f64, qy in 0.0..15.0f64,
        ) {
            let entries: Vec<GridEntry> = points
                .iter()
                .enumerate()
                .map(|(i, &(x, y, r))| GridEntry {
                    id: i as u64,
                    location: Point::new(x, y),
                    radius: r,
                })
                .collect();
            let t = KdTree::build(entries.clone());
            let q = Point::new(qx, qy);
            let mut got: Vec<u64> = t.coverers(q).iter().map(|e| e.id).collect();
            got.sort_unstable();
            let mut want: Vec<u64> = entries
                .iter()
                .filter(|e| e.location.covers(q, e.radius))
                .map(|e| e.id)
                .collect();
            want.sort_unstable();
            prop_assert_eq!(got, want);
        }
    }
}
