//! # com-geo
//!
//! Geometry and spatial indexing substrate for the Cross Online Matching
//! (COM) reproduction.
//!
//! The paper (Cheng et al., ICDE 2020) places requests and workers in a 2-D
//! Euclidean plane; every worker has a circular service range (`rad`, in
//! kilometres) and can only serve requests whose location falls inside that
//! circle. This crate provides:
//!
//! * [`Point`] — planar coordinates in kilometres, with distance helpers.
//! * [`BoundingBox`] — axis-aligned boxes used for city regions and index
//!   extents.
//! * [`GridIndex`] — a uniform-grid spatial hash supporting the two queries
//!   the online matchers need under churn: "all items whose *own* radius
//!   covers a query point" and "the nearest such item".
//! * [`GeoPoint`] / [`LocalProjection`] — latitude/longitude support, so
//!   real trace data (when available) can be projected into the planar model
//!   the algorithms operate on.
//!
//! Everything is allocation-conscious: the hot queries reuse caller-provided
//! buffers where it matters and the grid stores plain `u64` keys.

pub mod bbox;
pub mod grid;
pub mod kdtree;
pub mod latlon;
pub mod metric;
pub mod point;

pub use bbox::BoundingBox;
pub use grid::{GridEntry, GridIndex};
pub use kdtree::KdTree;
pub use latlon::{GeoPoint, LocalProjection, EARTH_RADIUS_KM};
pub use metric::DistanceMetric;
pub use point::Point;

/// Kilometres — the unit of every planar coordinate and radius in this
/// workspace.
pub type Km = f64;
