//! A self-contained problem instance: the input `G(T, W_in, W_out)` of the
//! competitive-ratio definitions.
//!
//! An [`Instance`] bundles everything needed to replay one COM scenario —
//! the world configuration, the platform roster, every worker's acceptance
//! history, and the global arrival stream — so the same instance can be
//! fed to every algorithm (and to the offline solver) for an
//! apples-to-apples comparison.

use std::collections::HashMap;

use serde::{Deserialize, Serialize};

use com_pricing::WorkerHistory;
use com_stream::{EventStream, WorkerId};

use crate::{World, WorldConfig};

/// One replayable COM problem instance.
#[derive(Debug, Clone)]
pub struct Instance {
    pub config: WorldConfig,
    pub platform_names: Vec<String>,
    /// Acceptance history per worker (drives Definition 3.1).
    pub histories: HashMap<WorkerId, WorkerHistory>,
    /// The global arrival order across all platforms.
    pub stream: EventStream,
}

impl Instance {
    /// Build the initial world: every worker registered (state
    /// `NotArrived`), clock at zero. The engine replays `self.stream`
    /// against it.
    pub fn build_world(&self) -> World {
        let mut world = World::new(self.config.clone(), self.platform_names.clone());
        for spec in self.stream.workers() {
            let history = self.histories.get(&spec.id).cloned().unwrap_or_default();
            world.register_worker(*spec, history);
        }
        world
    }

    /// Total number of requests.
    pub fn request_count(&self) -> usize {
        self.stream.request_count()
    }

    /// Total number of workers.
    pub fn worker_count(&self) -> usize {
        self.stream.worker_count()
    }

    /// Largest request value (`max v_r`), or `None` with no requests.
    pub fn max_value(&self) -> Option<f64> {
        self.stream.max_value()
    }

    /// A copy of this instance with its arrival order permuted (for the
    /// random-order competitive-ratio model). `permutation[i]` is the
    /// index into the current stream of the event that comes i-th.
    pub fn permuted(&self, permutation: &[usize]) -> Instance {
        Instance {
            config: self.config.clone(),
            platform_names: self.platform_names.clone(),
            histories: self.histories.clone(),
            stream: self.stream.permuted(permutation),
        }
    }
}

/// Serializable form of an instance (histories keyed by raw id so JSON
/// round-trips cleanly).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct InstanceData {
    pub platform_names: Vec<String>,
    pub histories: Vec<(u64, Vec<f64>)>,
    pub stream: EventStream,
    pub extent_side_km: f64,
    pub expected_radius: f64,
    pub speed_kmh: f64,
    pub service_secs: f64,
    pub reentry: bool,
    /// `None` = unbounded shifts (JSON has no representation for the
    /// in-memory `f64::INFINITY`).
    #[serde(default)]
    pub shift_secs: Option<f64>,
    pub update_histories: bool,
    #[serde(default)]
    pub metric: com_geo::DistanceMetric,
}

impl From<&Instance> for InstanceData {
    fn from(inst: &Instance) -> Self {
        let mut histories: Vec<(u64, Vec<f64>)> = inst
            .histories
            .iter()
            .map(|(id, h)| (id.as_u64(), h.values().to_vec()))
            .collect();
        histories.sort_by_key(|(id, _)| *id);
        InstanceData {
            platform_names: inst.platform_names.clone(),
            histories,
            stream: inst.stream.clone(),
            extent_side_km: inst.config.extent.width(),
            expected_radius: inst.config.expected_radius,
            speed_kmh: inst.config.service.speed_kmh,
            service_secs: inst.config.service.service_secs,
            reentry: inst.config.service.reentry,
            shift_secs: inst
                .config
                .service
                .shift_secs
                .is_finite()
                .then_some(inst.config.service.shift_secs),
            update_histories: inst.config.update_histories,
            metric: inst.config.metric,
        }
    }
}

impl From<InstanceData> for Instance {
    fn from(d: InstanceData) -> Self {
        let mut config = WorldConfig::city(d.extent_side_km);
        config.expected_radius = d.expected_radius;
        config.service.speed_kmh = d.speed_kmh;
        config.service.service_secs = d.service_secs;
        config.service.reentry = d.reentry;
        config.service.shift_secs = d.shift_secs.unwrap_or(f64::INFINITY);
        config.update_histories = d.update_histories;
        config.metric = d.metric;
        Instance {
            config,
            platform_names: d.platform_names,
            histories: d
                .histories
                .into_iter()
                .map(|(id, v)| (WorkerId(id), WorkerHistory::from_values(v)))
                .collect(),
            stream: d.stream,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use com_geo::Point;
    use com_stream::{PlatformId, RequestId, RequestSpec, Timestamp, WorkerSpec};

    fn tiny_instance() -> Instance {
        let workers = vec![WorkerSpec::new(
            WorkerId(1),
            PlatformId(0),
            Timestamp::from_secs(0.0),
            Point::new(1.0, 1.0),
            1.0,
        )];
        let requests = vec![RequestSpec::new(
            RequestId(1),
            PlatformId(0),
            Timestamp::from_secs(1.0),
            Point::new(1.2, 1.0),
            7.0,
        )];
        let mut histories = HashMap::new();
        histories.insert(WorkerId(1), WorkerHistory::from_values(vec![3.0, 6.0]));
        Instance {
            config: WorldConfig::city(10.0),
            platform_names: vec!["A".into(), "B".into()],
            histories,
            stream: EventStream::from_specs(workers, requests),
        }
    }

    #[test]
    fn build_world_registers_all_workers() {
        let inst = tiny_instance();
        let world = inst.build_world();
        assert_eq!(world.worker_count(), 1);
        assert_eq!(world.platform_count(), 2);
        assert_eq!(world.worker(WorkerId(1)).history.values(), &[3.0, 6.0]);
    }

    #[test]
    fn counts_and_max_value() {
        let inst = tiny_instance();
        assert_eq!(inst.request_count(), 1);
        assert_eq!(inst.worker_count(), 1);
        assert_eq!(inst.max_value(), Some(7.0));
    }

    #[test]
    fn permuted_leaves_original_untouched() {
        let inst = tiny_instance();
        let p = inst.permuted(&[1, 0]);
        assert_eq!(inst.stream.len(), p.stream.len());
        assert_ne!(inst.stream, p.stream);
    }

    #[test]
    fn serde_roundtrip() {
        let inst = tiny_instance();
        let data = InstanceData::from(&inst);
        let json = serde_json::to_string(&data).unwrap();
        let back: InstanceData = serde_json::from_str(&json).unwrap();
        let rebuilt: Instance = back.into();
        assert_eq!(rebuilt.stream, inst.stream);
        assert_eq!(rebuilt.platform_names, inst.platform_names);
        assert_eq!(
            rebuilt.histories[&WorkerId(1)],
            inst.histories[&WorkerId(1)]
        );
        assert_eq!(rebuilt.config, inst.config);
    }
}
