//! Worker entities and occupancy state.

use serde::{Deserialize, Serialize};

use com_geo::Point;
use com_pricing::WorkerHistory;
use com_stream::{Timestamp, Value, WorkerSpec};

/// Occupancy state of a worker (the paper's invariable + 1-by-1
/// constraints: a busy worker is locked to its request until the service
/// completes).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum WorkerState {
    /// Registered in the scenario but its arrival event has not been
    /// processed yet ("workers can only serve requests arriving after
    /// them").
    NotArrived,
    /// In its platform's waiting list, available for assignment.
    Idle,
    /// Serving a request; unavailable until `until`.
    Busy { until: Timestamp },
    /// Shift over — permanently unavailable for the rest of the day.
    Departed,
}

/// A crowd worker: the immutable arrival spec plus the mutable simulation
/// state (location drifts as the worker completes services; the history
/// backs the acceptance probability of Definition 3.1).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Worker {
    pub spec: WorkerSpec,
    /// Current location (equals `spec.location` until the first service).
    pub location: Point,
    pub state: WorkerState,
    /// Completed-request value history driving `pr(v', w)`.
    pub history: WorkerHistory,
    /// Number of requests this worker completed during the simulation.
    pub completed: u64,
    /// Total money earned during the simulation (full value for inner
    /// assignments, the outer payment for borrowed ones).
    pub earnings: Value,
}

impl Worker {
    /// A fresh worker that has not yet arrived.
    pub fn new(spec: WorkerSpec, history: WorkerHistory) -> Self {
        Worker {
            location: spec.location,
            spec,
            state: WorkerState::NotArrived,
            history,
            completed: 0,
            earnings: 0.0,
        }
    }

    /// Whether the worker is currently assignable.
    #[inline]
    pub fn is_idle(&self) -> bool {
        matches!(self.state, WorkerState::Idle)
    }

    /// Whether the worker's service circle covers `p` from its *current*
    /// location.
    #[inline]
    pub fn covers(&self, p: Point) -> bool {
        self.location.covers(p, self.spec.radius)
    }

    /// Transition: arrival (or re-entry) at `location`.
    pub(crate) fn enter_idle(&mut self, location: Point) {
        self.location = location;
        self.state = WorkerState::Idle;
    }

    /// Transition: assigned to a request, busy until `until`, paid
    /// `earned`.
    pub(crate) fn start_service(&mut self, until: Timestamp, earned: Value) {
        debug_assert!(self.is_idle(), "only idle workers can be assigned");
        self.state = WorkerState::Busy { until };
        self.completed += 1;
        self.earnings += earned;
    }

    /// Approximate heap footprint in bytes (memory metric).
    pub fn approx_bytes(&self) -> usize {
        std::mem::size_of::<Self>() + self.history.approx_bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use com_stream::{PlatformId, WorkerId};

    fn spec() -> WorkerSpec {
        WorkerSpec::new(
            WorkerId(1),
            PlatformId(0),
            Timestamp::from_secs(0.0),
            Point::new(1.0, 1.0),
            1.0,
        )
    }

    #[test]
    fn lifecycle() {
        let mut w = Worker::new(spec(), WorkerHistory::from_values(vec![5.0]));
        assert_eq!(w.state, WorkerState::NotArrived);
        assert!(!w.is_idle());

        w.enter_idle(w.spec.location);
        assert!(w.is_idle());

        w.start_service(Timestamp::from_secs(100.0), 7.5);
        assert!(!w.is_idle());
        assert_eq!(w.completed, 1);
        assert_eq!(w.earnings, 7.5);

        w.enter_idle(Point::new(3.0, 3.0));
        assert!(w.is_idle());
        assert_eq!(w.location, Point::new(3.0, 3.0));
    }

    #[test]
    fn covers_follows_current_location() {
        let mut w = Worker::new(spec(), WorkerHistory::new());
        assert!(w.covers(Point::new(1.5, 1.0)));
        w.enter_idle(Point::new(10.0, 10.0));
        assert!(!w.covers(Point::new(1.5, 1.0)));
        assert!(w.covers(Point::new(10.5, 10.0)));
    }

    #[test]
    fn earnings_accumulate() {
        let mut w = Worker::new(spec(), WorkerHistory::new());
        w.enter_idle(w.spec.location);
        w.start_service(Timestamp::from_secs(10.0), 4.0);
        w.enter_idle(Point::ORIGIN);
        w.start_service(Timestamp::from_secs(20.0), 6.0);
        assert_eq!(w.earnings, 10.0);
        assert_eq!(w.completed, 2);
    }
}
