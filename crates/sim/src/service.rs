//! Service model: how long an assignment occupies a worker.

use serde::{Deserialize, Serialize};

use com_geo::{DistanceMetric, Point};

/// Busy-time model for assignments.
///
/// The paper's core model is one-shot bipartite matching (each worker
/// serves one request), but its day-long experiments clearly reuse workers
/// ("after a worker finishes the service of `r`, s/he can come back to
/// the platform again at a new time point", Section II-A). The service
/// model makes both modes available:
///
/// * [`ServiceModel::one_shot`] — workers never return; the strict
///   bipartite model used for the competitive-ratio experiments.
/// * [`ServiceModel::taxi`] — travel to the rider at `speed_kmh`, serve
///   for `service_secs`, then re-enter the waiting list at the request's
///   location.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ServiceModel {
    /// Travel speed in km/h used to convert worker→request distance into
    /// travel time.
    pub speed_kmh: f64,
    /// Fixed service duration in seconds added on top of travel.
    pub service_secs: f64,
    /// Whether workers re-enter the waiting list after completing.
    pub reentry: bool,
    /// Shift length in seconds: a worker stops taking new assignments
    /// once `shift_secs` have passed since its arrival (it still finishes
    /// the job in progress). `f64::INFINITY` disables departures — the
    /// paper's model, where workers stay available all day. Omitted from
    /// JSON when unbounded (JSON cannot express infinity).
    #[serde(default = "unbounded_shift", skip_serializing_if = "is_unbounded")]
    pub shift_secs: f64,
}

fn unbounded_shift() -> f64 {
    f64::INFINITY
}

#[allow(clippy::trivially_copy_pass_by_ref)]
fn is_unbounded(v: &f64) -> bool {
    v.is_infinite()
}

impl ServiceModel {
    /// Workers serve exactly one request and never return.
    pub fn one_shot() -> Self {
        ServiceModel {
            speed_kmh: 30.0,
            service_secs: 0.0,
            reentry: false,
            shift_secs: f64::INFINITY,
        }
    }

    /// A city taxi profile: `speed_kmh` travel, `service_secs` on the job,
    /// re-entry enabled.
    pub fn taxi(speed_kmh: f64, service_secs: f64) -> Self {
        assert!(speed_kmh > 0.0, "speed must be positive");
        assert!(service_secs >= 0.0, "service time must be non-negative");
        ServiceModel {
            speed_kmh,
            service_secs,
            reentry: true,
            shift_secs: f64::INFINITY,
        }
    }

    /// A copy of this model with workers leaving `shift_secs` after their
    /// arrival.
    pub fn with_shift(mut self, shift_secs: f64) -> Self {
        assert!(shift_secs > 0.0, "shift must be positive");
        self.shift_secs = shift_secs;
        self
    }

    /// Default day-simulation profile: 30 km/h through city traffic and a
    /// 30-minute average engagement per job (pickup, ride, drop-off and
    /// repositioning before the driver is assignable again). At the
    /// paper's request:worker ratios this makes fleet occupancy bind
    /// during the rush-hour peaks — the regime in which reserving inner
    /// workers for high-value requests (RamCOM) pays off.
    pub fn default_taxi() -> Self {
        Self::taxi(30.0, 2_400.0)
    }

    /// Seconds the worker is busy when assigned from `worker_loc` to a
    /// request at `request_loc` (Euclidean travel).
    pub fn busy_secs(&self, worker_loc: Point, request_loc: Point) -> f64 {
        self.busy_secs_metric(DistanceMetric::Euclidean, worker_loc, request_loc)
    }

    /// Seconds busy with travel measured under `metric` (Manhattan for
    /// the road-network surrogate).
    pub fn busy_secs_metric(
        &self,
        metric: DistanceMetric,
        worker_loc: Point,
        request_loc: Point,
    ) -> f64 {
        let travel_h = metric.distance(worker_loc, request_loc) / self.speed_kmh;
        travel_h * 3600.0 + self.service_secs
    }
}

impl Default for ServiceModel {
    fn default() -> Self {
        Self::default_taxi()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn busy_time_includes_travel_and_service() {
        let m = ServiceModel::taxi(60.0, 600.0);
        // 1 km at 60 km/h = 60 s travel.
        let secs = m.busy_secs(Point::new(0.0, 0.0), Point::new(1.0, 0.0));
        assert!((secs - 660.0).abs() < 1e-9);
    }

    #[test]
    fn zero_distance_costs_only_service_time() {
        let m = ServiceModel::taxi(30.0, 300.0);
        assert_eq!(
            m.busy_secs(Point::new(2.0, 2.0), Point::new(2.0, 2.0)),
            300.0
        );
    }

    #[test]
    fn one_shot_disables_reentry() {
        assert!(!ServiceModel::one_shot().reentry);
        assert!(ServiceModel::default_taxi().reentry);
    }

    #[test]
    fn shifts_default_to_unbounded() {
        assert!(ServiceModel::default_taxi().shift_secs.is_infinite());
        let m = ServiceModel::default_taxi().with_shift(8.0 * 3600.0);
        assert_eq!(m.shift_secs, 8.0 * 3600.0);
    }

    #[test]
    #[should_panic(expected = "shift must be positive")]
    fn rejects_zero_shift() {
        ServiceModel::default_taxi().with_shift(0.0);
    }

    #[test]
    #[should_panic(expected = "speed must be positive")]
    fn rejects_zero_speed() {
        ServiceModel::taxi(0.0, 0.0);
    }
}
