//! Assignment records — the immutable audit trail of matching decisions.

use serde::{Deserialize, Serialize};

use com_stream::{PlatformId, RequestSpec, Timestamp, Value, WorkerId};

/// How a request was resolved.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum MatchKind {
    /// Served by one of the target platform's own workers; the platform
    /// gains the full `v_r` (Definition 2.5).
    Inner,
    /// Served by a borrowed (outer) worker at `outer payment`; the target
    /// platform gains `v_r − v'_r`.
    Outer,
    /// Rejected — no feasible or willing worker.
    Rejected,
}

/// The record of one request's resolution.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Assignment {
    pub request: RequestSpec,
    pub kind: MatchKind,
    /// The serving worker (for `Inner`/`Outer`).
    pub worker: Option<WorkerId>,
    /// The serving worker's home platform.
    pub worker_platform: Option<PlatformId>,
    /// Outer payment `v'_r` (0 for inner assignments and rejections).
    pub outer_payment: Value,
    /// Whether at least one concrete offer was extended to an outer
    /// worker (a *cooperative request* per Definition 2.3, whether or not
    /// any outer worker accepted — the denominator of the
    /// acceptance-ratio metric). `false` when no offer round ever ran,
    /// e.g. when pricing found no viable payment in `(0, v_r]`.
    pub was_cooperative_offer: bool,
    /// Pickup (deadhead) distance from the serving worker's location at
    /// decision time to the request, in km (0 for rejections). Feeds the
    /// travel-distance metrics of the route-aware extension (the paper's
    /// §VII future work).
    pub travel_km: f64,
    /// Simulation time at which the decision was taken.
    pub decided_at: Timestamp,
    /// Wall-clock time the algorithm spent deciding, in nanoseconds (the
    /// paper's "response time" metric).
    pub decision_nanos: u64,
}

impl Assignment {
    /// The target platform's revenue from this request (Definition 2.5):
    /// `v_r` for inner, `v_r − v'_r` for outer, 0 for rejections.
    pub fn platform_revenue(&self) -> Value {
        match self.kind {
            MatchKind::Inner => self.request.value,
            MatchKind::Outer => self.request.value - self.outer_payment,
            MatchKind::Rejected => 0.0,
        }
    }

    /// What the serving worker earned: `v_r` when inner (the platform's
    /// cut is out of scope in the paper's accounting), `v'_r` when outer.
    pub fn worker_earnings(&self) -> Value {
        match self.kind {
            MatchKind::Inner => self.request.value,
            MatchKind::Outer => self.outer_payment,
            MatchKind::Rejected => 0.0,
        }
    }

    /// Whether the request was completed (served by anyone).
    pub fn is_completed(&self) -> bool {
        !matches!(self.kind, MatchKind::Rejected)
    }

    /// Whether this was a *successful* cooperative assignment (an outer
    /// worker accepted) — the numerator of the acceptance-ratio metric.
    pub fn is_cooperative_success(&self) -> bool {
        matches!(self.kind, MatchKind::Outer)
    }

    /// Ratio `v'_r / v_r` for outer assignments (the paper's outer payment
    /// rate metric), `None` otherwise.
    pub fn outer_payment_rate(&self) -> Option<f64> {
        match self.kind {
            MatchKind::Outer => Some(self.outer_payment / self.request.value),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use com_geo::Point;
    use com_stream::RequestId;

    fn req(value: f64) -> RequestSpec {
        RequestSpec::new(
            RequestId(1),
            PlatformId(0),
            Timestamp::from_secs(10.0),
            Point::new(1.0, 1.0),
            value,
        )
    }

    fn assignment(kind: MatchKind, payment: f64) -> Assignment {
        Assignment {
            request: req(10.0),
            kind,
            worker: Some(WorkerId(3)),
            worker_platform: Some(PlatformId(1)),
            outer_payment: payment,
            was_cooperative_offer: matches!(kind, MatchKind::Outer),
            travel_km: 0.4,
            decided_at: Timestamp::from_secs(10.0),
            decision_nanos: 1_000,
        }
    }

    #[test]
    fn inner_revenue_is_full_value() {
        let a = assignment(MatchKind::Inner, 0.0);
        assert_eq!(a.platform_revenue(), 10.0);
        assert_eq!(a.worker_earnings(), 10.0);
        assert!(a.is_completed());
        assert!(!a.is_cooperative_success());
        assert_eq!(a.outer_payment_rate(), None);
    }

    #[test]
    fn outer_revenue_subtracts_payment() {
        let a = assignment(MatchKind::Outer, 7.0);
        assert_eq!(a.platform_revenue(), 3.0);
        assert_eq!(a.worker_earnings(), 7.0);
        assert!(a.is_completed());
        assert!(a.is_cooperative_success());
        assert_eq!(a.outer_payment_rate(), Some(0.7));
    }

    #[test]
    fn rejection_yields_nothing() {
        let a = assignment(MatchKind::Rejected, 0.0);
        assert_eq!(a.platform_revenue(), 0.0);
        assert_eq!(a.worker_earnings(), 0.0);
        assert!(!a.is_completed());
        assert_eq!(a.outer_payment_rate(), None);
    }

    #[test]
    fn example_1_revenue_accounting() {
        // Fig. 3(c): r3 (value 6) served by outer worker at 50% payment.
        let mut a = assignment(MatchKind::Outer, 3.0);
        a.request = req(6.0);
        assert_eq!(a.platform_revenue(), 3.0);
        assert_eq!(a.worker_earnings(), 3.0);
    }
}
