//! Typed constraint violations — the error layer of the paper's
//! Definitions 2.2–2.4.
//!
//! Every mechanical constraint the world and the replay engine enforce
//! (invariable assignment, range, 1-by-1 occupancy, payment in
//! `(0, v_r]`, monotone time) has a variant here, so a misbehaving
//! matcher produces a structured, matchable error instead of a process
//! abort. The `Display` strings deliberately contain the exact phrases
//! the historical `assert!` messages used ("not idle", "range
//! constraint", "time must be monotone", "duplicate worker id", …): the
//! panicking wrappers format a violation straight into their panic
//! message, so `#[should_panic(expected = …)]` tests written against the
//! old asserts keep passing.

use std::fmt;

use com_stream::{PlatformId, RequestId, Timestamp, Value, WorkerId};

/// A breach of one of COM's matching constraints (§II, Def. 2.2–2.4),
/// detected either at enforcement time (`World::try_assign`, the
/// engine's decision validation) or after the fact by the run auditor
/// reconstructing the assignment log.
#[derive(Debug, Clone, PartialEq)]
pub enum ConstraintViolation {
    /// The decision references a worker id the world never registered.
    UnknownWorker { worker: WorkerId },
    /// Two workers were registered under the same id.
    DuplicateWorker { worker: WorkerId },
    /// A worker spec names a platform outside the world's roster.
    UnknownPlatform {
        worker: WorkerId,
        platform: PlatformId,
    },
    /// 1-by-1 / invariable constraint: the worker is already serving a
    /// request (or has not arrived / already departed).
    WorkerNotIdle {
        worker: WorkerId,
        request: RequestId,
    },
    /// Range constraint (Def. 2.2): the worker's service circle does not
    /// cover the request location.
    OutOfRange {
        worker: WorkerId,
        request: RequestId,
        distance_km: f64,
        radius_km: f64,
    },
    /// Time constraint: the worker entered its waiting list only after
    /// the request arrived.
    EnteredAfterRequest {
        worker: WorkerId,
        request: RequestId,
        entered_at: Timestamp,
        arrival: Timestamp,
    },
    /// Events must be replayed in time order.
    TimeRewind { now: Timestamp, to: Timestamp },
    /// A worker's arrival event was processed twice.
    WorkerArrivedTwice { worker: WorkerId },
    /// A worker arrival event was processed after the clock already
    /// passed its arrival time (events must be fed in time order).
    ArrivalOutOfOrder {
        worker: WorkerId,
        arrival: Timestamp,
        now: Timestamp,
    },
    /// An `Inner` decision used a worker from another platform.
    ForeignWorker {
        worker: WorkerId,
        worker_platform: PlatformId,
        request: RequestId,
        request_platform: PlatformId,
    },
    /// An `Outer` decision used one of the target platform's own workers.
    InnerWorkerAsOuter {
        worker: WorkerId,
        request: RequestId,
        platform: PlatformId,
    },
    /// An `Outer` decision's claimed lender platform disagrees with the
    /// worker's actual home platform.
    PlatformMismatch {
        worker: WorkerId,
        claimed: PlatformId,
        actual: PlatformId,
    },
    /// Payment constraint (Def. 2.4): the outer payment must lie in
    /// `(0, v_r]`.
    PaymentOutOfBounds {
        request: RequestId,
        payment: Value,
        value: Value,
    },
}

impl fmt::Display for ConstraintViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        use ConstraintViolation::*;
        match self {
            UnknownWorker { worker } => write!(f, "unknown worker {worker}"),
            DuplicateWorker { worker } => write!(f, "duplicate worker id {worker}"),
            UnknownPlatform { worker, platform } => {
                write!(f, "unknown platform {platform} for worker {worker}")
            }
            WorkerNotIdle { worker, request } => {
                write!(f, "worker {worker} is not idle (request {request})")
            }
            OutOfRange {
                worker,
                request,
                distance_km,
                radius_km,
            } => write!(
                f,
                "range constraint violated: {worker} cannot reach {request} \
                 ({distance_km:.3} km away, radius {radius_km:.3} km)"
            ),
            EnteredAfterRequest {
                worker,
                request,
                entered_at,
                arrival,
            } => write!(
                f,
                "time constraint violated: worker {worker} entered at {entered_at} \
                 after request {request} arrived at {arrival}"
            ),
            TimeRewind { now, to } => write!(f, "time must be monotone: {to} < {now}"),
            WorkerArrivedTwice { worker } => write!(f, "worker {worker} arrived twice"),
            ArrivalOutOfOrder {
                worker,
                arrival,
                now,
            } => write!(
                f,
                "arrival event out of order for worker {worker} \
                 (arrival {arrival}, clock already at {now})"
            ),
            ForeignWorker {
                worker,
                worker_platform,
                request,
                request_platform,
            } => write!(
                f,
                "inner decision used a foreign worker: {worker} of platform \
                 {worker_platform} for request {request} of platform {request_platform}"
            ),
            InnerWorkerAsOuter {
                worker,
                request,
                platform,
            } => write!(
                f,
                "outer decision used an inner worker: {worker} belongs to the \
                 requesting platform {platform} (request {request})"
            ),
            PlatformMismatch {
                worker,
                claimed,
                actual,
            } => write!(
                f,
                "outer decision platform mismatch: {worker} claimed from \
                 {claimed} but belongs to {actual}"
            ),
            PaymentOutOfBounds {
                request,
                payment,
                value,
            } => write!(
                f,
                "outer payment {payment} outside (0, v_r] for request {request} \
                 (v_r = {value})"
            ),
        }
    }
}

impl std::error::Error for ConstraintViolation {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_preserves_historic_assert_phrases() {
        // The panicking World/engine wrappers format these violations
        // straight into panic messages; `#[should_panic(expected = …)]`
        // tests match on these substrings.
        let cases: [(ConstraintViolation, &str); 6] = [
            (
                ConstraintViolation::WorkerNotIdle {
                    worker: WorkerId(1),
                    request: RequestId(2),
                },
                "not idle",
            ),
            (
                ConstraintViolation::OutOfRange {
                    worker: WorkerId(1),
                    request: RequestId(2),
                    distance_km: 3.0,
                    radius_km: 1.0,
                },
                "range constraint",
            ),
            (
                ConstraintViolation::TimeRewind {
                    now: Timestamp::from_secs(10.0),
                    to: Timestamp::from_secs(5.0),
                },
                "time must be monotone",
            ),
            (
                ConstraintViolation::DuplicateWorker {
                    worker: WorkerId(1),
                },
                "duplicate worker id",
            ),
            (
                ConstraintViolation::ForeignWorker {
                    worker: WorkerId(1),
                    worker_platform: PlatformId(1),
                    request: RequestId(2),
                    request_platform: PlatformId(0),
                },
                "inner decision used a foreign worker",
            ),
            (
                ConstraintViolation::PaymentOutOfBounds {
                    request: RequestId(2),
                    payment: -1.0,
                    value: 4.0,
                },
                "outside (0, v_r]",
            ),
        ];
        for (violation, phrase) in cases {
            let msg = violation.to_string();
            assert!(msg.contains(phrase), "`{msg}` lacks `{phrase}`");
        }
    }

    #[test]
    fn violations_are_std_errors() {
        fn takes_error<E: std::error::Error>(_: &E) {}
        takes_error(&ConstraintViolation::UnknownWorker {
            worker: WorkerId(9),
        });
    }
}
