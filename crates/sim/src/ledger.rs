//! Per-platform revenue accounting — who earned what, who paid whom.
//!
//! The paper's Definition 2.5 books each request's value on the *target*
//! platform (`v_r` for inner service, `v_r − v'` for outer), but once
//! platforms run as separate daemons each side needs its own books: the
//! requester's ledger shows the outsourcing payment as money out, the
//! lender's ledger shows the same payment as money in. A
//! [`PlatformLedger`] folds an assignment log into exactly that split,
//! and two federated daemons' ledgers must agree on every cross-platform
//! payment line for the run to be considered merged-identical.

use serde::{Deserialize, Serialize};

use com_stream::{PlatformId, Value};

use crate::{Assignment, MatchKind};

/// One platform's books for a finished (or in-flight) run.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct PlatformLedger {
    /// Net revenue per Definition 2.5 over owned requests: `Σ v_r` for
    /// inner service plus `Σ (v_r − v')` for outsourced service.
    pub revenue: f64,
    /// Gross value of owned completed requests (`Σ v_r`).
    pub gross_value: f64,
    /// Outsourcing payments made to rival platforms' workers
    /// (`Σ v'` over owned outer assignments).
    pub outsource_paid: f64,
    /// Outsourcing payments received for lending this platform's
    /// workers (`Σ v'` over rival-owned outer assignments served by a
    /// worker of this platform).
    pub outsource_earned: f64,
    /// Owned requests served by this platform's own workers.
    pub inner_served: u64,
    /// Owned requests served by borrowed (outer) workers.
    pub outer_served: u64,
    /// Owned requests rejected.
    pub rejected: u64,
    /// Owned requests for which at least one cooperative offer ran
    /// (Definition 2.3's denominator), served or not.
    pub cooperative_offers: u64,
    /// This platform's workers lent out to rival platforms.
    pub workers_lent: u64,
}

impl PlatformLedger {
    /// Fold one assignment record into platform `platform`'s books. Both
    /// sides of an outer assignment are booked: the owner's ledger takes
    /// the revenue/payment split, the lender's ledger takes the earning.
    pub fn record(&mut self, platform: PlatformId, a: &Assignment) {
        if a.request.platform == platform {
            self.revenue += a.platform_revenue();
            if a.was_cooperative_offer {
                self.cooperative_offers += 1;
            }
            match a.kind {
                MatchKind::Inner => {
                    self.gross_value += a.request.value;
                    self.inner_served += 1;
                }
                MatchKind::Outer => {
                    self.gross_value += a.request.value;
                    self.outer_served += 1;
                    self.outsource_paid += a.outer_payment;
                }
                MatchKind::Rejected => self.rejected += 1,
            }
        }
        if a.kind == MatchKind::Outer
            && a.request.platform != platform
            && a.worker_platform == Some(platform)
        {
            self.outsource_earned += a.outer_payment;
            self.workers_lent += 1;
        }
    }

    /// The books of platform `platform` over a whole assignment log.
    pub fn for_platform(platform: PlatformId, assignments: &[Assignment]) -> Self {
        let mut ledger = PlatformLedger::default();
        for a in assignments {
            ledger.record(platform, a);
        }
        ledger
    }

    /// Owned requests that reached a decision.
    pub fn owned_requests(&self) -> u64 {
        self.inner_served + self.outer_served + self.rejected
    }

    /// Net cash flow of the outsourcing side-channel: earnings from
    /// lending minus payments for borrowing. Summed across all
    /// platforms of a run this is zero — every payment line appears
    /// once as `paid` and once as `earned`.
    pub fn outsource_net(&self) -> Value {
        self.outsource_earned - self.outsource_paid
    }

    /// Whether two independently-derived ledgers for the same platform
    /// agree to within float tolerance — the cross-daemon consistency
    /// check `matchfed` runs on the two federated logs.
    pub fn agrees_with(&self, other: &PlatformLedger) -> bool {
        let close = |a: f64, b: f64| (a - b).abs() < 1e-6;
        close(self.revenue, other.revenue)
            && close(self.gross_value, other.gross_value)
            && close(self.outsource_paid, other.outsource_paid)
            && close(self.outsource_earned, other.outsource_earned)
            && self.inner_served == other.inner_served
            && self.outer_served == other.outer_served
            && self.rejected == other.rejected
            && self.cooperative_offers == other.cooperative_offers
            && self.workers_lent == other.workers_lent
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use com_geo::Point;
    use com_stream::{RequestId, RequestSpec, Timestamp, WorkerId};

    fn assignment(
        request_platform: u16,
        kind: MatchKind,
        worker_platform: Option<u16>,
        value: f64,
        payment: f64,
    ) -> Assignment {
        Assignment {
            request: RequestSpec::new(
                RequestId(1),
                PlatformId(request_platform),
                Timestamp::from_secs(1.0),
                Point::new(1.0, 1.0),
                value,
            ),
            kind,
            worker: worker_platform.map(|_| WorkerId(9)),
            worker_platform: worker_platform.map(PlatformId),
            outer_payment: payment,
            was_cooperative_offer: matches!(kind, MatchKind::Outer),
            travel_km: 0.0,
            decided_at: Timestamp::from_secs(1.0),
            decision_nanos: 0,
        }
    }

    #[test]
    fn outer_assignment_books_both_sides() {
        let log = vec![assignment(0, MatchKind::Outer, Some(1), 10.0, 4.0)];
        let owner = PlatformLedger::for_platform(PlatformId(0), &log);
        let lender = PlatformLedger::for_platform(PlatformId(1), &log);
        assert_eq!(owner.revenue, 6.0);
        assert_eq!(owner.outsource_paid, 4.0);
        assert_eq!(owner.outer_served, 1);
        assert_eq!(owner.cooperative_offers, 1);
        assert_eq!(lender.outsource_earned, 4.0);
        assert_eq!(lender.workers_lent, 1);
        assert_eq!(lender.revenue, 0.0);
        assert_eq!(lender.owned_requests(), 0);
        assert!((owner.outsource_net() + lender.outsource_net()).abs() < 1e-12);
    }

    #[test]
    fn inner_and_rejected_book_one_side_only() {
        let log = vec![
            assignment(0, MatchKind::Inner, Some(0), 5.0, 0.0),
            assignment(1, MatchKind::Rejected, None, 3.0, 0.0),
        ];
        let a = PlatformLedger::for_platform(PlatformId(0), &log);
        let b = PlatformLedger::for_platform(PlatformId(1), &log);
        assert_eq!(a.revenue, 5.0);
        assert_eq!(a.inner_served, 1);
        assert_eq!(a.workers_lent, 0);
        assert_eq!(b.rejected, 1);
        assert_eq!(b.revenue, 0.0);
    }

    #[test]
    fn agreement_is_tolerant_to_float_noise_only() {
        let log = vec![assignment(0, MatchKind::Outer, Some(1), 10.0, 4.0)];
        let a = PlatformLedger::for_platform(PlatformId(0), &log);
        let mut b = a.clone();
        b.revenue += 1e-9;
        assert!(a.agrees_with(&b));
        b.revenue += 1.0;
        assert!(!a.agrees_with(&b));
        let mut c = a.clone();
        c.workers_lent += 1;
        assert!(!a.agrees_with(&c));
    }
}
