//! The multi-platform world state.

use std::collections::HashMap;

use com_geo::{BoundingBox, DistanceMetric, Km, Point};
use com_pricing::WorkerHistory;
use com_stream::{PlatformId, RequestSpec, TimerQueue, Timestamp, Value, WorkerId, WorkerSpec};
use serde::{Deserialize, Serialize};

use crate::waiting_list::IdleWorker;
use crate::{ConstraintViolation, ServiceModel, WaitingList, Worker, WorkerState};

/// Static configuration of a world. Serializes as plain JSON (the
/// `com-serve` wire protocol ships one in its `hello` message); the
/// unbounded-shift `ServiceModel` caveat applies — see
/// [`ServiceModel::shift_secs`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WorldConfig {
    /// City extent (waiting-list spatial indexes are built over it).
    pub extent: BoundingBox,
    /// Expected service radius — grid cell-size hint.
    pub expected_radius: Km,
    /// Busy-time / re-entry model.
    pub service: ServiceModel,
    /// When `true`, each completed assignment's worker payment is appended
    /// to the worker's value history, so acceptance probabilities evolve
    /// during the day. The paper's model uses static histories; this flag
    /// is an ablation extension (default `false`).
    pub update_histories: bool,
    /// Distance metric for the range constraint and travel times.
    /// `Manhattan` is the road-network surrogate the paper's §II-A
    /// generalisation describes (service ranges become diamonds).
    pub metric: DistanceMetric,
}

impl WorldConfig {
    /// Sensible defaults for a `side × side` km city.
    pub fn city(side: Km) -> Self {
        WorldConfig {
            extent: BoundingBox::square(side),
            expected_radius: 1.0,
            service: ServiceModel::default_taxi(),
            update_histories: false,
            metric: DistanceMetric::Euclidean,
        }
    }
}

/// The full simulation state: every platform's waiting list, every
/// worker's occupancy, and the pending re-entry timers.
///
/// The world enforces the paper's constraints mechanically:
///
/// * **Time**: a worker enters a waiting list only when its arrival (or
///   re-entry) event is processed, and the engine processes events in
///   time order — so every waiting worker arrived before the current
///   request.
/// * **1-by-1 / invariable**: assignment removes the worker from its
///   waiting list and marks it busy until service completion; assigning a
///   non-idle worker panics.
/// * **Range**: the coverer queries only return workers whose service
///   circle covers the request location.
/// * **Cross-platform visibility**: [`World::outer_coverers`] exposes only
///   *unoccupied* workers of other platforms, which is all the paper
///   allows competitors to share.
#[derive(Debug, Clone)]
pub struct World {
    config: WorldConfig,
    platform_names: Vec<String>,
    waiting: Vec<WaitingList>,
    workers: HashMap<WorkerId, Worker>,
    reentries: TimerQueue<WorkerId>,
    /// Scheduled shift-end checks (only populated for finite shifts).
    departures: TimerQueue<WorkerId>,
    now: Timestamp,
}

impl World {
    /// Create an empty world with one waiting list per platform.
    pub fn new(config: WorldConfig, platform_names: Vec<String>) -> Self {
        assert!(!platform_names.is_empty(), "need at least one platform");
        let waiting = platform_names
            .iter()
            .map(|_| WaitingList::with_metric(config.extent, config.expected_radius, config.metric))
            .collect();
        World {
            config,
            platform_names,
            waiting,
            workers: HashMap::new(),
            reentries: TimerQueue::new(),
            departures: TimerQueue::new(),
            now: Timestamp::ZERO,
        }
    }

    /// Number of platforms.
    pub fn platform_count(&self) -> usize {
        self.platform_names.len()
    }

    /// Platform display name.
    pub fn platform_name(&self, p: PlatformId) -> &str {
        &self.platform_names[p.index()]
    }

    /// Current simulation time.
    pub fn now(&self) -> Timestamp {
        self.now
    }

    /// The static configuration.
    pub fn config(&self) -> &WorldConfig {
        &self.config
    }

    /// Register a worker before the simulation starts (state
    /// `NotArrived`).
    ///
    /// # Panics
    /// Panics on duplicate ids or out-of-range platforms (see
    /// [`World::try_register_worker`] for the fallible form).
    pub fn register_worker(&mut self, spec: WorkerSpec, history: WorkerHistory) {
        if let Err(violation) = self.try_register_worker(spec, history) {
            panic!("{violation}");
        }
    }

    /// Fallible registration: duplicate ids and unknown platforms become
    /// typed [`ConstraintViolation`]s. On error the world is unchanged.
    pub fn try_register_worker(
        &mut self,
        spec: WorkerSpec,
        history: WorkerHistory,
    ) -> Result<(), ConstraintViolation> {
        if spec.platform.index() >= self.platform_names.len() {
            return Err(ConstraintViolation::UnknownPlatform {
                worker: spec.id,
                platform: spec.platform,
            });
        }
        if self.workers.contains_key(&spec.id) {
            return Err(ConstraintViolation::DuplicateWorker { worker: spec.id });
        }
        self.workers.insert(spec.id, Worker::new(spec, history));
        Ok(())
    }

    /// Advance simulation time to `t`, processing any due re-entries.
    ///
    /// # Panics
    /// Panics if `t` is earlier than the current time (events must be
    /// replayed in order); see [`World::try_advance_to`].
    pub fn advance_to(&mut self, t: Timestamp) {
        if let Err(violation) = self.try_advance_to(t) {
            panic!("{violation}");
        }
    }

    /// Fallible clock advance: a rewind is a typed
    /// [`ConstraintViolation::TimeRewind`] and leaves the world unchanged.
    pub fn try_advance_to(&mut self, t: Timestamp) -> Result<(), ConstraintViolation> {
        if t < self.now {
            return Err(ConstraintViolation::TimeRewind {
                now: self.now,
                to: t,
            });
        }
        let shift = self.config.service.shift_secs;
        while let Some((at, id)) = self.reentries.pop_due(t) {
            let worker = self
                .workers
                .get_mut(&id)
                .expect("re-entry timer for unknown worker");
            debug_assert!(matches!(worker.state, WorkerState::Busy { .. }));
            // Shift end: the worker finished its last job and goes home
            // instead of re-entering the waiting list.
            if at.since(worker.spec.arrival) >= shift {
                worker.state = WorkerState::Departed;
                continue;
            }
            worker.enter_idle(worker.location);
            let entry = IdleWorker {
                id,
                location: worker.location,
                radius: worker.spec.radius,
                entered_at: at,
            };
            self.waiting[worker.spec.platform.index()].add(entry);
        }
        // Idle workers whose shift ended leave the waiting lists (busy
        // ones retire at their re-entry check above).
        while let Some((_, id)) = self.departures.pop_due(t) {
            let worker = self.workers.get_mut(&id).expect("unknown worker");
            if worker.is_idle() {
                self.waiting[worker.spec.platform.index()].remove(id);
                worker.state = WorkerState::Departed;
            }
        }
        self.now = t;
        Ok(())
    }

    /// Process a worker arrival event: the worker joins its home
    /// platform's waiting list at its spec location.
    ///
    /// # Panics
    /// Panics on a repeated arrival, an unknown id, or an arrival event
    /// fed after the clock already passed its time; see
    /// [`World::try_worker_arrives`] for the fallible form.
    pub fn worker_arrives(&mut self, id: WorkerId) {
        if let Err(violation) = self.try_worker_arrives(id) {
            panic!("{violation}");
        }
    }

    /// Fallible arrival processing: unknown ids, repeated arrivals, and
    /// out-of-order arrival events become typed
    /// [`ConstraintViolation`]s. On error the world is unchanged, so a
    /// live event feed (the serving daemon) can reject the one bad event
    /// and keep going.
    pub fn try_worker_arrives(&mut self, id: WorkerId) -> Result<(), ConstraintViolation> {
        let Some(worker) = self.workers.get_mut(&id) else {
            return Err(ConstraintViolation::UnknownWorker { worker: id });
        };
        if !matches!(worker.state, WorkerState::NotArrived) {
            return Err(ConstraintViolation::WorkerArrivedTwice { worker: id });
        }
        if !(worker.spec.arrival >= self.now || (worker.spec.arrival - self.now).abs() < 1e-9) {
            return Err(ConstraintViolation::ArrivalOutOfOrder {
                worker: id,
                arrival: worker.spec.arrival,
                now: self.now,
            });
        }
        worker.enter_idle(worker.spec.location);
        let entry = IdleWorker {
            id,
            location: worker.location,
            radius: worker.spec.radius,
            entered_at: worker.spec.arrival,
        };
        let platform = worker.spec.platform;
        let shift = self.config.service.shift_secs;
        if shift.is_finite() {
            self.departures.schedule(worker.spec.arrival + shift, id);
        }
        self.waiting[platform.index()].add(entry);
        self.record_occupancy_gauges();
        Ok(())
    }

    /// Idle workers of platform `p` covering `point` (the candidate
    /// *inner* workers for a request of `p`), nearest-first.
    pub fn inner_coverers(&self, p: PlatformId, point: Point) -> Vec<IdleWorker> {
        self.waiting[p.index()].coverers(point)
    }

    /// Allocation-free [`World::inner_coverers`]: candidates land in `out`
    /// (cleared first, same nearest-first order); `grid_buf` is grid-query
    /// scratch. Matchers that keep both buffers across decisions stop
    /// paying two allocations per request.
    pub fn inner_coverers_into(
        &self,
        p: PlatformId,
        point: Point,
        out: &mut Vec<IdleWorker>,
        grid_buf: &mut Vec<com_geo::GridEntry>,
    ) {
        self.waiting[p.index()].coverers_into(point, out, grid_buf);
    }

    /// The nearest idle inner worker covering `point`.
    pub fn nearest_inner_coverer(&self, p: PlatformId, point: Point) -> Option<IdleWorker> {
        self.waiting[p.index()].nearest_coverer(point)
    }

    /// Idle workers of *other* platforms covering `point` (the candidate
    /// *outer* workers, Definition 2.3), merged nearest-first.
    pub fn outer_coverers(&self, p: PlatformId, point: Point) -> Vec<(PlatformId, IdleWorker)> {
        let mut out = Vec::new();
        let mut grid_buf = Vec::new();
        self.outer_coverers_into(p, point, &mut out, &mut grid_buf);
        out
    }

    /// Allocation-free [`World::outer_coverers`]: candidates land in `out`
    /// (cleared first, same merged nearest-first order). Per-list results
    /// are appended unsorted and sorted once globally — the (distance, id)
    /// key is total because worker ids are globally unique, so the order
    /// is identical to sorting each list first.
    pub fn outer_coverers_into(
        &self,
        p: PlatformId,
        point: Point,
        out: &mut Vec<(PlatformId, IdleWorker)>,
        grid_buf: &mut Vec<com_geo::GridEntry>,
    ) {
        out.clear();
        for (idx, wl) in self.waiting.iter().enumerate() {
            if idx == p.index() {
                continue;
            }
            let pid = PlatformId(idx as u16);
            wl.coverers_each(point, grid_buf, |w| out.push((pid, w)));
        }
        let metric = self.config.metric;
        out.sort_by(|a, b| {
            metric
                .distance(a.1.location, point)
                .total_cmp(&metric.distance(b.1.location, point))
                .then_with(|| a.1.id.cmp(&b.1.id))
        });
    }

    /// Immutable access to a worker.
    pub fn worker(&self, id: WorkerId) -> &Worker {
        &self.workers[&id]
    }

    /// Non-panicking worker lookup (`None` for unregistered ids).
    pub fn find_worker(&self, id: WorkerId) -> Option<&Worker> {
        self.workers.get(&id)
    }

    /// Whether the worker is currently idle (in some waiting list).
    pub fn is_idle(&self, id: WorkerId) -> bool {
        self.workers[&id].is_idle()
    }

    /// Number of idle workers on platform `p`.
    pub fn idle_count(&self, p: PlatformId) -> usize {
        self.waiting[p.index()].len()
    }

    /// Total registered workers.
    pub fn worker_count(&self) -> usize {
        self.workers.len()
    }

    /// Pending re-entry timers (busy workers that will return).
    pub fn pending_reentries(&self) -> usize {
        self.reentries.len()
    }

    /// Assign `worker_id` to `request`, paying the worker `earned`
    /// (`v_r` for inner assignments, the outer payment `v'_r` for
    /// borrowed workers). Removes the worker from its waiting list, marks
    /// it busy, moves it to the request location for when it frees up,
    /// and schedules re-entry when the service model allows. Returns the
    /// service completion time.
    ///
    /// # Panics
    /// Panics if the worker is not idle, its circle does not cover the
    /// request, or the request arrived before the worker entered the
    /// list (time constraint). [`World::try_assign`] is the fallible
    /// form that returns a [`ConstraintViolation`] instead.
    pub fn assign(
        &mut self,
        worker_id: WorkerId,
        request: &RequestSpec,
        earned: Value,
    ) -> Timestamp {
        match self.try_assign(worker_id, request, earned) {
            Ok(until) => until,
            Err(violation) => panic!("{violation}"),
        }
    }

    /// Fallible assignment. All constraint checks run *before* any state
    /// mutation, so on `Err` the world is exactly as it was — callers can
    /// record the violation and keep replaying the stream.
    pub fn try_assign(
        &mut self,
        worker_id: WorkerId,
        request: &RequestSpec,
        earned: Value,
    ) -> Result<Timestamp, ConstraintViolation> {
        let metric = self.config.metric;
        let Some(worker) = self.workers.get_mut(&worker_id) else {
            return Err(ConstraintViolation::UnknownWorker { worker: worker_id });
        };
        if !worker.is_idle() {
            return Err(ConstraintViolation::WorkerNotIdle {
                worker: worker_id,
                request: request.id,
            });
        }
        if !metric.covers(worker.location, request.location, worker.spec.radius) {
            return Err(ConstraintViolation::OutOfRange {
                worker: worker_id,
                request: request.id,
                distance_km: metric.distance(worker.location, request.location),
                radius_km: worker.spec.radius,
            });
        }
        // Check the time constraint via `get` before `remove` so a
        // violation leaves the waiting list untouched.
        let entry = self.waiting[worker.spec.platform.index()]
            .get(worker_id)
            .expect("idle worker missing from waiting list");
        if entry.entered_at > request.arrival {
            return Err(ConstraintViolation::EnteredAfterRequest {
                worker: worker_id,
                request: request.id,
                entered_at: entry.entered_at,
                arrival: request.arrival,
            });
        }
        self.waiting[worker.spec.platform.index()]
            .remove(worker_id)
            .expect("idle worker missing from waiting list");
        let worker = self
            .workers
            .get_mut(&worker_id)
            .expect("worker vanished mid-assign");

        let busy = self.config.service.busy_secs_metric(
            self.config.metric,
            worker.location,
            request.location,
        );
        let until = self.now + busy;
        worker.start_service(until, earned);
        worker.location = request.location;
        if self.config.update_histories {
            worker.history.record(earned);
        }
        if self.config.service.reentry {
            self.reentries.schedule(until, worker_id);
        }
        self.record_occupancy_gauges();
        Ok(until)
    }

    /// Publish occupancy gauges to the telemetry collector (idle pool
    /// size, deepest waiting list, busy workers pending re-entry). A
    /// single flag check when no collector is installed.
    fn record_occupancy_gauges(&self) {
        if !com_obs::is_active() {
            return;
        }
        let idle: usize = self.waiting.iter().map(|w| w.len()).sum();
        let deepest = self.waiting.iter().map(|w| w.len()).max().unwrap_or(0);
        com_obs::gauge_set("world.idle_workers", idle as f64);
        com_obs::gauge_set("world.waiting_list_depth", deepest as f64);
        com_obs::gauge_set("world.busy_workers", self.reentries.len() as f64);
    }

    /// Approximate heap footprint in bytes (memory metric): workers,
    /// waiting lists, and the re-entry queue.
    pub fn approx_bytes(&self) -> usize {
        use std::mem::size_of;
        let workers: usize = self
            .workers
            .values()
            .map(|w| w.approx_bytes() + size_of::<WorkerId>() + 16)
            .sum();
        let waiting: usize = self.waiting.iter().map(|w| w.approx_bytes()).sum();
        workers + waiting + self.reentries.len() * (size_of::<(Timestamp, WorkerId)>() + 8)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use com_stream::RequestId;

    fn ts(s: f64) -> Timestamp {
        Timestamp::from_secs(s)
    }

    fn world(service: ServiceModel) -> World {
        let config = WorldConfig {
            extent: BoundingBox::square(10.0),
            expected_radius: 1.0,
            service,
            update_histories: false,
            metric: DistanceMetric::Euclidean,
        };
        World::new(config, vec!["DiDi".into(), "Yueche".into()])
    }

    fn wspec(id: u64, platform: u16, t: f64, x: f64, y: f64) -> WorkerSpec {
        WorkerSpec::new(
            WorkerId(id),
            PlatformId(platform),
            ts(t),
            Point::new(x, y),
            1.0,
        )
    }

    fn rspec(id: u64, platform: u16, t: f64, x: f64, y: f64, v: f64) -> RequestSpec {
        RequestSpec::new(
            RequestId(id),
            PlatformId(platform),
            ts(t),
            Point::new(x, y),
            v,
        )
    }

    #[test]
    fn arrival_and_inner_query() {
        let mut w = world(ServiceModel::one_shot());
        w.register_worker(wspec(1, 0, 0.0, 5.0, 5.0), WorkerHistory::new());
        w.register_worker(wspec(2, 1, 0.0, 5.2, 5.0), WorkerHistory::new());
        w.worker_arrives(WorkerId(1));
        w.worker_arrives(WorkerId(2));
        w.advance_to(ts(1.0));

        let inner = w.inner_coverers(PlatformId(0), Point::new(5.1, 5.0));
        assert_eq!(inner.len(), 1);
        assert_eq!(inner[0].id, WorkerId(1));

        let outer = w.outer_coverers(PlatformId(0), Point::new(5.1, 5.0));
        assert_eq!(outer.len(), 1);
        assert_eq!(outer[0].0, PlatformId(1));
        assert_eq!(outer[0].1.id, WorkerId(2));
    }

    #[test]
    fn assignment_locks_worker() {
        let mut w = world(ServiceModel::one_shot());
        w.register_worker(wspec(1, 0, 0.0, 5.0, 5.0), WorkerHistory::new());
        w.worker_arrives(WorkerId(1));
        w.advance_to(ts(10.0));

        let r = rspec(1, 0, 10.0, 5.3, 5.0, 8.0);
        let until = w.assign(WorkerId(1), &r, 8.0);
        assert!(until > ts(10.0));
        assert!(!w.is_idle(WorkerId(1)));
        assert_eq!(w.idle_count(PlatformId(0)), 0);
        assert_eq!(w.worker(WorkerId(1)).earnings, 8.0);
        assert_eq!(w.worker(WorkerId(1)).completed, 1);
        // One-shot: no re-entry scheduled.
        assert_eq!(w.pending_reentries(), 0);
    }

    #[test]
    fn reentry_returns_worker_at_request_location() {
        let mut w = world(ServiceModel::taxi(36.0, 100.0));
        w.register_worker(wspec(1, 0, 0.0, 5.0, 5.0), WorkerHistory::new());
        w.worker_arrives(WorkerId(1));
        w.advance_to(ts(10.0));

        let r = rspec(1, 0, 10.0, 5.5, 5.0, 4.0);
        // 0.5 km at 36 km/h = 50 s travel + 100 s service = busy 150 s.
        let until = w.assign(WorkerId(1), &r, 4.0);
        assert!((until.as_secs() - 160.0).abs() < 1e-9);
        assert_eq!(w.pending_reentries(), 1);

        // Not yet back.
        w.advance_to(ts(100.0));
        assert_eq!(w.idle_count(PlatformId(0)), 0);

        // Back after completion, at the request location.
        w.advance_to(ts(200.0));
        assert_eq!(w.idle_count(PlatformId(0)), 1);
        assert!(w.is_idle(WorkerId(1)));
        assert_eq!(w.worker(WorkerId(1)).location, Point::new(5.5, 5.0));

        // And can be assigned again.
        let r2 = rspec(2, 0, 200.0, 5.6, 5.0, 3.0);
        w.assign(WorkerId(1), &r2, 3.0);
        assert_eq!(w.worker(WorkerId(1)).completed, 2);
    }

    #[test]
    fn outer_coverers_exclude_own_platform_and_sort_by_distance() {
        let mut w = World::new(
            WorldConfig::city(10.0),
            vec!["A".into(), "B".into(), "C".into()],
        );
        w.register_worker(wspec(1, 0, 0.0, 5.0, 5.0), WorkerHistory::new());
        w.register_worker(wspec(2, 1, 0.0, 5.4, 5.0), WorkerHistory::new());
        w.register_worker(wspec(3, 2, 0.0, 5.2, 5.0), WorkerHistory::new());
        for id in 1..=3 {
            w.worker_arrives(WorkerId(id));
        }
        let outer = w.outer_coverers(PlatformId(0), Point::new(5.0, 5.0));
        let ids: Vec<u64> = outer.iter().map(|(_, w)| w.id.as_u64()).collect();
        assert_eq!(ids, vec![3, 2]);
    }

    #[test]
    fn histories_update_only_when_enabled() {
        let mut config = WorldConfig::city(10.0);
        config.service = ServiceModel::one_shot();
        config.update_histories = true;
        let mut w = World::new(config, vec!["A".into(), "B".into()]);
        w.register_worker(
            wspec(1, 0, 0.0, 5.0, 5.0),
            WorkerHistory::from_values(vec![10.0]),
        );
        w.worker_arrives(WorkerId(1));
        w.advance_to(ts(5.0));
        w.assign(WorkerId(1), &rspec(1, 0, 5.0, 5.1, 5.0, 6.0), 6.0);
        assert_eq!(w.worker(WorkerId(1)).history.values(), &[6.0, 10.0]);
    }

    #[test]
    #[should_panic(expected = "not idle")]
    fn cannot_assign_busy_worker() {
        let mut w = world(ServiceModel::one_shot());
        w.register_worker(wspec(1, 0, 0.0, 5.0, 5.0), WorkerHistory::new());
        w.worker_arrives(WorkerId(1));
        w.advance_to(ts(5.0));
        let r1 = rspec(1, 0, 5.0, 5.1, 5.0, 2.0);
        let r2 = rspec(2, 0, 5.0, 5.2, 5.0, 2.0);
        w.assign(WorkerId(1), &r1, 2.0);
        w.assign(WorkerId(1), &r2, 2.0);
    }

    #[test]
    #[should_panic(expected = "range constraint")]
    fn cannot_assign_out_of_range() {
        let mut w = world(ServiceModel::one_shot());
        w.register_worker(wspec(1, 0, 0.0, 1.0, 1.0), WorkerHistory::new());
        w.worker_arrives(WorkerId(1));
        w.advance_to(ts(5.0));
        w.assign(WorkerId(1), &rspec(1, 0, 5.0, 9.0, 9.0, 2.0), 2.0);
    }

    #[test]
    #[should_panic(expected = "time must be monotone")]
    fn time_cannot_rewind() {
        let mut w = world(ServiceModel::one_shot());
        w.advance_to(ts(10.0));
        w.advance_to(ts(5.0));
    }

    #[test]
    #[should_panic(expected = "duplicate worker id")]
    fn duplicate_registration_rejected() {
        let mut w = world(ServiceModel::one_shot());
        w.register_worker(wspec(1, 0, 0.0, 1.0, 1.0), WorkerHistory::new());
        w.register_worker(wspec(1, 0, 0.0, 2.0, 2.0), WorkerHistory::new());
    }

    #[test]
    fn reentry_order_is_deterministic_for_ties() {
        let mut w = world(ServiceModel::taxi(30.0, 100.0));
        // Two workers assigned to zero-distance requests at the same time
        // finish simultaneously; both must come back.
        w.register_worker(wspec(1, 0, 0.0, 5.0, 5.0), WorkerHistory::new());
        w.register_worker(wspec(2, 0, 0.0, 6.0, 6.0), WorkerHistory::new());
        w.worker_arrives(WorkerId(1));
        w.worker_arrives(WorkerId(2));
        w.advance_to(ts(1.0));
        w.assign(WorkerId(1), &rspec(1, 0, 1.0, 5.0, 5.0, 2.0), 2.0);
        w.assign(WorkerId(2), &rspec(2, 0, 1.0, 6.0, 6.0, 2.0), 2.0);
        w.advance_to(ts(500.0));
        assert_eq!(w.idle_count(PlatformId(0)), 2);
    }

    #[test]
    fn idle_workers_depart_at_shift_end() {
        let mut config = WorldConfig::city(10.0);
        config.service = ServiceModel::taxi(30.0, 100.0).with_shift(1_000.0);
        let mut w = World::new(config, vec!["A".into()]);
        w.register_worker(wspec(1, 0, 0.0, 5.0, 5.0), WorkerHistory::new());
        w.worker_arrives(WorkerId(1));
        w.advance_to(ts(999.0));
        assert_eq!(w.idle_count(PlatformId(0)), 1);
        w.advance_to(ts(1_000.0));
        assert_eq!(w.idle_count(PlatformId(0)), 0);
        assert_eq!(w.worker(WorkerId(1)).state, WorkerState::Departed);
    }

    #[test]
    fn busy_workers_finish_their_job_then_depart() {
        let mut config = WorldConfig::city(10.0);
        config.service = ServiceModel::taxi(30.0, 2_000.0).with_shift(1_000.0);
        let mut w = World::new(config, vec!["A".into()]);
        w.register_worker(wspec(1, 0, 0.0, 5.0, 5.0), WorkerHistory::new());
        w.worker_arrives(WorkerId(1));
        w.advance_to(ts(500.0));
        // Assigned before shift end; the job runs past it.
        w.assign(WorkerId(1), &rspec(1, 0, 500.0, 5.0, 5.0, 4.0), 4.0);
        w.advance_to(ts(5_000.0));
        // The worker completed the job (invariable constraint) but did
        // not re-enter the waiting list.
        assert_eq!(w.worker(WorkerId(1)).completed, 1);
        assert_eq!(w.worker(WorkerId(1)).state, WorkerState::Departed);
        assert_eq!(w.idle_count(PlatformId(0)), 0);
    }

    #[test]
    fn infinite_shifts_never_depart() {
        let mut w = world(ServiceModel::taxi(30.0, 100.0));
        w.register_worker(wspec(1, 0, 0.0, 5.0, 5.0), WorkerHistory::new());
        w.worker_arrives(WorkerId(1));
        w.advance_to(ts(80_000.0));
        assert_eq!(w.idle_count(PlatformId(0)), 1);
    }

    #[test]
    fn try_assign_reports_violations_without_mutating() {
        let mut w = world(ServiceModel::one_shot());
        w.register_worker(wspec(1, 0, 0.0, 5.0, 5.0), WorkerHistory::new());
        w.worker_arrives(WorkerId(1));
        w.advance_to(ts(5.0));

        // Unknown worker.
        let err = w
            .try_assign(WorkerId(99), &rspec(1, 0, 5.0, 5.0, 5.0, 2.0), 2.0)
            .unwrap_err();
        assert_eq!(
            err,
            ConstraintViolation::UnknownWorker {
                worker: WorkerId(99)
            }
        );

        // Out of range: worker stays idle and in the waiting list.
        let err = w
            .try_assign(WorkerId(1), &rspec(2, 0, 5.0, 9.0, 9.0, 2.0), 2.0)
            .unwrap_err();
        assert!(matches!(err, ConstraintViolation::OutOfRange { .. }));
        assert!(w.is_idle(WorkerId(1)));
        assert_eq!(w.idle_count(PlatformId(0)), 1);

        // Time constraint: request that arrived before the worker entered.
        let err = w
            .try_assign(WorkerId(1), &rspec(3, 0, -1.0, 5.1, 5.0, 2.0), 2.0)
            .unwrap_err();
        assert!(matches!(
            err,
            ConstraintViolation::EnteredAfterRequest { .. }
        ));
        assert!(w.is_idle(WorkerId(1)));
        assert_eq!(w.idle_count(PlatformId(0)), 1);
        assert_eq!(w.worker(WorkerId(1)).completed, 0);

        // A valid assignment still goes through afterwards.
        let until = w
            .try_assign(WorkerId(1), &rspec(4, 0, 5.0, 5.1, 5.0, 2.0), 2.0)
            .unwrap();
        assert!(until > ts(5.0));

        // Busy worker.
        let err = w
            .try_assign(WorkerId(1), &rspec(5, 0, 5.0, 5.1, 5.0, 2.0), 2.0)
            .unwrap_err();
        assert_eq!(
            err,
            ConstraintViolation::WorkerNotIdle {
                worker: WorkerId(1),
                request: RequestId(5),
            }
        );
    }

    #[test]
    fn try_register_and_advance_report_violations() {
        let mut w = world(ServiceModel::one_shot());
        w.try_register_worker(wspec(1, 0, 0.0, 1.0, 1.0), WorkerHistory::new())
            .unwrap();
        let err = w
            .try_register_worker(wspec(1, 0, 0.0, 2.0, 2.0), WorkerHistory::new())
            .unwrap_err();
        assert_eq!(
            err,
            ConstraintViolation::DuplicateWorker {
                worker: WorkerId(1)
            }
        );
        let err = w
            .try_register_worker(wspec(2, 7, 0.0, 2.0, 2.0), WorkerHistory::new())
            .unwrap_err();
        assert!(matches!(err, ConstraintViolation::UnknownPlatform { .. }));
        assert_eq!(w.worker_count(), 1);

        w.try_advance_to(ts(10.0)).unwrap();
        let err = w.try_advance_to(ts(5.0)).unwrap_err();
        assert_eq!(
            err,
            ConstraintViolation::TimeRewind {
                now: ts(10.0),
                to: ts(5.0),
            }
        );
        assert_eq!(w.now(), ts(10.0));
    }

    #[test]
    fn memory_footprint_grows_with_workers() {
        let mut w = world(ServiceModel::one_shot());
        let before = w.approx_bytes();
        for id in 0..100 {
            w.register_worker(
                wspec(id, 0, 0.0, 5.0, 5.0),
                WorkerHistory::from_values(vec![1.0, 2.0, 3.0]),
            );
        }
        assert!(w.approx_bytes() > before);
    }
}
