//! # com-sim
//!
//! The multi-platform spatial-crowdsourcing world that the COM algorithms
//! run against.
//!
//! The paper's setting (Section II) has several competing platforms that
//! provide the same service. Each platform maintains a *waiting list* of
//! its own idle workers, ordered by arrival; platforms additionally share
//! the information of their **unoccupied** workers with each other, which
//! is what allows a target platform to "borrow" outer workers. This crate
//! models exactly that:
//!
//! * [`Worker`] — a worker entity: arrival spec, acceptance history,
//!   occupancy state, lifetime earnings.
//! * [`WaitingList`] — arrival-ordered idle workers of one platform with a
//!   spatial index for the range constraint.
//! * [`World`] — all platforms plus the service model; supports worker
//!   arrivals, assignment (inner or outer), service completion and worker
//!   re-entry, and the cross-platform visibility rules.
//! * [`ServiceModel`] — how long a worker stays busy after an assignment
//!   (travel at a fixed speed + fixed service duration) and whether the
//!   worker re-enters the waiting list afterwards.
//! * [`Assignment`] / [`MatchKind`] — the immutable record of one matching
//!   decision, consumed by the metrics layer.

pub mod instance;
pub mod ledger;
pub mod outcome;
pub mod service;
pub mod violation;
pub mod waiting_list;
pub mod worker;
pub mod world;

pub use instance::{Instance, InstanceData};
pub use ledger::PlatformLedger;
pub use outcome::{Assignment, MatchKind};
pub use service::ServiceModel;
pub use violation::ConstraintViolation;
pub use waiting_list::{IdleWorker, WaitingList};
pub use worker::{Worker, WorkerState};
pub use world::{World, WorldConfig};

// Re-export the identifier and spec types: the simulator is the natural
// façade for them.
pub use com_stream::{
    ArrivalEvent, EventStream, PlatformId, RequestId, RequestSpec, Timestamp, Value, WorkerId,
    WorkerSpec,
};
