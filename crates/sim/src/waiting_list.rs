//! Per-platform waiting lists of idle workers.
//!
//! "When a worker arrives at the platform, s/he will wait in a waiting
//! list until a request is assigned. … Each platform maintains a waiting
//! list of workers, ordered by their arrival time. A worker being assigned
//! to a request would be deleted from the waiting list." (Section II-A)
//!
//! The list couples an arrival-order map with a spatial grid index so the
//! matchers can answer "which idle workers cover this request?" without a
//! linear scan.

use std::collections::HashMap;

use com_geo::{BoundingBox, DistanceMetric, GridEntry, GridIndex, Km, Point};
use com_stream::{Timestamp, WorkerId};

/// An idle worker as seen by the matcher: everything needed to apply the
/// range constraint and the nearest-worker tie-break.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct IdleWorker {
    pub id: WorkerId,
    pub location: Point,
    pub radius: Km,
    /// When the worker (re-)entered this waiting list.
    pub entered_at: Timestamp,
}

/// The waiting list of one platform.
#[derive(Debug, Clone)]
pub struct WaitingList {
    index: GridIndex,
    entries: HashMap<WorkerId, IdleWorker>,
    metric: DistanceMetric,
}

impl WaitingList {
    /// An empty waiting list over the given city extent; `expected_radius`
    /// tunes the grid cell size.
    pub fn new(extent: BoundingBox, expected_radius: Km) -> Self {
        Self::with_metric(extent, expected_radius, DistanceMetric::Euclidean)
    }

    /// A waiting list whose range constraint uses `metric` (the grid
    /// index prunes with Euclidean balls — a superset of any metric ball
    /// with the same radius — and the metric filters exactly).
    pub fn with_metric(extent: BoundingBox, expected_radius: Km, metric: DistanceMetric) -> Self {
        WaitingList {
            index: GridIndex::with_expected_radius(extent, expected_radius),
            entries: HashMap::new(),
            metric,
        }
    }

    /// Number of idle workers.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the list is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Whether `id` is currently waiting.
    pub fn contains(&self, id: WorkerId) -> bool {
        self.entries.contains_key(&id)
    }

    /// Add a worker (arrival or re-entry).
    ///
    /// # Panics
    /// Panics in debug builds if the worker is already waiting (the 1-by-1
    /// constraint makes double-insertion a logic error).
    pub fn add(&mut self, worker: IdleWorker) {
        debug_assert!(
            !self.entries.contains_key(&worker.id),
            "worker {} already in waiting list",
            worker.id
        );
        self.index
            .insert(worker.id.as_u64(), worker.location, worker.radius);
        self.entries.insert(worker.id, worker);
    }

    /// Remove a worker (assignment or departure). Returns the entry if it
    /// was present.
    pub fn remove(&mut self, id: WorkerId) -> Option<IdleWorker> {
        let entry = self.entries.remove(&id)?;
        self.index.remove(id.as_u64());
        Some(entry)
    }

    /// Look up one idle worker.
    pub fn get(&self, id: WorkerId) -> Option<&IdleWorker> {
        self.entries.get(&id)
    }

    /// All idle workers whose service range covers `point` under the
    /// list's metric, sorted by (metric distance, id) — deterministic
    /// and nearest-first, which is the assignment order DemCOM and TOTA
    /// use.
    pub fn coverers(&self, point: Point) -> Vec<IdleWorker> {
        let mut out = Vec::new();
        let mut grid_buf = Vec::new();
        self.coverers_into(point, &mut out, &mut grid_buf);
        out
    }

    /// Allocation-free `coverers`: results land in `out` (cleared first,
    /// same nearest-first order), and `grid_buf` is the reusable scratch
    /// for the underlying grid query. Matchers call this once per decision
    /// with buffers they own, so the hot path stops allocating two Vecs
    /// per request.
    pub fn coverers_into(
        &self,
        point: Point,
        out: &mut Vec<IdleWorker>,
        grid_buf: &mut Vec<GridEntry>,
    ) {
        out.clear();
        self.coverers_each(point, grid_buf, |w| out.push(w));
        out.sort_by(|a, b| {
            self.metric
                .distance(a.location, point)
                .total_cmp(&self.metric.distance(b.location, point))
                .then_with(|| a.id.cmp(&b.id))
        });
    }

    /// Visit every coverer of `point` in *unspecified* order, without
    /// sorting. `World::outer_coverers_into` merges several lists and
    /// sorts once globally — the (distance, id) key is total (worker ids
    /// are globally unique), so skipping the per-list sort cannot change
    /// the merged order.
    pub fn coverers_each(
        &self,
        point: Point,
        grid_buf: &mut Vec<GridEntry>,
        mut f: impl FnMut(IdleWorker),
    ) {
        self.index.coverers_into(point, grid_buf);
        for e in grid_buf.iter() {
            let w = self.entries[&WorkerId(e.id)];
            if self.metric.covers(w.location, point, w.radius) {
                f(w);
            }
        }
    }

    /// The nearest idle worker covering `point` under the list's metric,
    /// if any.
    pub fn nearest_coverer(&self, point: Point) -> Option<IdleWorker> {
        match self.metric {
            // The grid answers the Euclidean case directly.
            DistanceMetric::Euclidean => self
                .index
                .nearest_coverer(point)
                .map(|e| self.entries[&WorkerId(e.id)]),
            _ => self.coverers(point).into_iter().next(),
        }
    }

    /// Iterate over all idle workers (arbitrary order).
    pub fn iter(&self) -> impl Iterator<Item = &IdleWorker> {
        self.entries.values()
    }

    /// Approximate heap footprint in bytes (memory metric).
    pub fn approx_bytes(&self) -> usize {
        use std::mem::size_of;
        self.index.approx_bytes()
            + self.entries.capacity() * (size_of::<WorkerId>() + size_of::<IdleWorker>() + 16)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn list() -> WaitingList {
        WaitingList::new(BoundingBox::square(10.0), 1.0)
    }

    fn idle(id: u64, x: f64, y: f64, rad: f64, t: f64) -> IdleWorker {
        IdleWorker {
            id: WorkerId(id),
            location: Point::new(x, y),
            radius: rad,
            entered_at: Timestamp::from_secs(t),
        }
    }

    #[test]
    fn add_query_remove() {
        let mut wl = list();
        wl.add(idle(1, 5.0, 5.0, 1.0, 0.0));
        wl.add(idle(2, 5.5, 5.0, 1.0, 1.0));
        wl.add(idle(3, 9.0, 9.0, 1.0, 2.0));
        assert_eq!(wl.len(), 3);
        assert!(wl.contains(WorkerId(1)));

        let c = wl.coverers(Point::new(5.2, 5.0));
        assert_eq!(
            c.iter().map(|w| w.id).collect::<Vec<_>>(),
            vec![WorkerId(1), WorkerId(2)]
        );

        let removed = wl.remove(WorkerId(1)).unwrap();
        assert_eq!(removed.id, WorkerId(1));
        assert!(!wl.contains(WorkerId(1)));
        assert_eq!(wl.coverers(Point::new(5.2, 5.0)).len(), 1);
        assert!(wl.remove(WorkerId(1)).is_none());
    }

    #[test]
    fn coverers_sorted_nearest_first() {
        let mut wl = list();
        wl.add(idle(1, 5.0, 5.0, 3.0, 0.0));
        wl.add(idle(2, 6.0, 5.0, 3.0, 0.0));
        wl.add(idle(3, 4.5, 5.0, 3.0, 0.0));
        let c = wl.coverers(Point::new(6.1, 5.0));
        let ids: Vec<u64> = c.iter().map(|w| w.id.as_u64()).collect();
        assert_eq!(ids, vec![2, 1, 3]);
    }

    #[test]
    fn nearest_coverer_matches_sorted_head() {
        let mut wl = list();
        wl.add(idle(1, 2.0, 2.0, 2.0, 0.0));
        wl.add(idle(2, 3.0, 2.0, 2.0, 0.0));
        let q = Point::new(2.8, 2.0);
        assert_eq!(wl.nearest_coverer(q).unwrap().id, wl.coverers(q)[0].id);
    }

    #[test]
    fn empty_queries() {
        let wl = list();
        assert!(wl.is_empty());
        assert!(wl.coverers(Point::new(1.0, 1.0)).is_empty());
        assert!(wl.nearest_coverer(Point::new(1.0, 1.0)).is_none());
    }

    #[test]
    #[should_panic(expected = "already in waiting list")]
    #[cfg(debug_assertions)]
    fn double_add_is_a_logic_error() {
        let mut wl = list();
        wl.add(idle(1, 1.0, 1.0, 1.0, 0.0));
        wl.add(idle(1, 2.0, 2.0, 1.0, 1.0));
    }
}
