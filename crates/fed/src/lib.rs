//! # com-fed
//!
//! The federated serving driver: runs one scenario through **two**
//! `matchd` daemons — each owning one platform, joined by the
//! inter-daemon outsourcing protocol (`outsource_offer` /
//! `outsource_accept` / `outsource_reject`) — and proves the federated
//! outcome is *byte-identical* to a single-process session over the same
//! instance and seed.
//!
//! ## The deterministic-replica federation model
//!
//! Both daemons receive the **full** event stream (every worker, every
//! request) and run the same matcher with the same seed, so their
//! replicas take identical decisions. Ownership (`hello.fed.platform`)
//! only changes *accountability*: a daemon's outer decision on a request
//! it owns must be confirmed by the rival daemon over the wire before it
//! is applied; a decision on a request it does not own is applied
//! immediately and, when it lends one of the daemon's own workers,
//! recorded so the inbound offer can be validated against the local
//! replica (the lender re-proves `v' ∈ (0, v_r]`, Definition 2.3).
//!
//! ## The non-owner-first driving rule
//!
//! For every request the driver sends the event **first to the daemon
//! that does not own it**, then to the owner. By the time the owner's
//! replica decides to outsource and its offer crosses the wire, the
//! lender has already processed the same event and holds the matching
//! lendable entry — an offer can never arrive ahead of the event that
//! justifies it (offer-before-event is a `desync` reject by design).
//! Lockstep driving (one outstanding event per daemon) also makes the
//! offer round-trip deadlock-free: while the owner blocks inside its
//! decision, the lender's shard is idle and answers immediately.
//!
//! ## What "verified" means
//!
//! [`verify`] replays the instance through the local batch engine
//! (`try_run_online`, same matcher and seed) and checks, per daemon:
//! full-replica canonical run and digest equal to the reference; the
//! `bye.fed` projection equal to [`com_core::project_platform_run`] of
//! the reference; [`com_core::merge_platform_runs`] over the two owned
//! projections rebuilding the reference byte-for-byte; the reported
//! [`com_sim::PlatformLedger`] agreeing with locally-derived books; the
//! server-side audit silent; the projected-instance audit silent; and
//! zero degraded offers. Any live per-request divergence between the two
//! daemons' answers is caught while driving, before the byes.

use std::io;
use std::time::Instant;

use com_bench::runner::{canonical_assignment_json, canonical_run_digest, canonical_run_json};
use com_core::{
    merge_platform_runs, project_platform_instance, project_platform_run, try_run_online,
    MatcherRegistry, RunResult,
};
use com_serve::{
    serve, ByeMsg, Client, ClientMsg, DeepStatsMsg, FedHello, Hello, ServerConfig, ServerHandle,
    ServerMsg, WireFormat, WorkerMsg, DEFAULT_OFFER_DEADLINE_MS,
};
use com_sim::{ArrivalEvent, Assignment, Instance, PlatformId, PlatformLedger};

/// How to drive the federated pair.
#[derive(Debug, Clone)]
pub struct FedOptions {
    /// Matcher spec string (see `com_core::MatcherRegistry`).
    pub matcher: String,
    pub seed: u64,
    /// Wire framing for *both* client links and (echoed into
    /// `hello.fed.frame`) the inter-daemon peer links.
    pub frame: WireFormat,
    /// Per-offer deadline in milliseconds.
    pub deadline_ms: u64,
    /// Cross-daemon session binding stamped on every offer.
    pub fed_sid: u64,
}

impl Default for FedOptions {
    fn default() -> Self {
        FedOptions {
            matcher: "demcom".into(),
            seed: 42,
            frame: WireFormat::Ndjson,
            deadline_ms: DEFAULT_OFFER_DEADLINE_MS,
            fed_sid: 1,
        }
    }
}

/// One daemon's half of the run.
#[derive(Debug)]
pub struct DaemonReport {
    /// The platform this daemon owned.
    pub platform: u16,
    /// Final session report (`bye`), `fed` half included.
    pub bye: ByeMsg,
    /// Deep telemetry snapshot taken just before shutdown. Carries the
    /// `fed-offer`/`fed-lend` phase rows and the federation counters.
    pub deep_stats: Option<DeepStatsMsg>,
}

/// What a federated drive produced.
#[derive(Debug)]
pub struct FedReport {
    /// Events streamed (each goes to both daemons).
    pub events: usize,
    /// Event-streaming wall time, teardown excluded (both daemons
    /// answered every event).
    pub wall_secs: f64,
    /// Requests whose two answers (owner vs non-owner daemon) diverged
    /// in their canonical projection — live desync, fatal for identity.
    pub divergent_responses: Vec<String>,
    /// Daemon halves, index = owned platform.
    pub daemons: Vec<DaemonReport>,
}

impl FedReport {
    /// Events per wall-clock second over the drive (each event counted
    /// once even though it is sent to both daemons).
    pub fn events_per_sec(&self) -> f64 {
        if self.wall_secs <= 0.0 {
            return 0.0;
        }
        self.events as f64 / self.wall_secs
    }
}

fn bad_data(detail: String) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, detail)
}

/// The canonical (wall-clock-free) projection of one response, or `None`
/// for non-decision responses; used to byte-compare the two daemons'
/// answers to the same request while driving.
fn response_assignment(msg: &ServerMsg) -> Option<&Assignment> {
    match msg {
        ServerMsg::assign(a) | ServerMsg::reject(a) => Some(a),
        ServerMsg::timeout { assignment, .. } => Some(assignment),
        _ => None,
    }
}

fn open_session(
    addr: &str,
    peer: Option<String>,
    platform: u16,
    instance: &Instance,
    options: &FedOptions,
) -> io::Result<Client> {
    let mut client = Client::connect(addr)?;
    let hello = ClientMsg::hello(Hello {
        matcher: options.matcher.clone(),
        seed: options.seed,
        world: instance.config.clone(),
        platforms: instance.platform_names.clone(),
        max_value: instance.max_value(),
        frame: Some(options.frame.as_str().to_string()),
        origin: None,
        fed: Some(FedHello {
            platform,
            fed_sid: options.fed_sid,
            peer,
            deadline_ms: Some(options.deadline_ms),
        }),
    });
    let (response, _busy) = client.rpc(&hello)?;
    match response {
        ServerMsg::welcome { frame, .. } => {
            let accepted = frame.as_deref().and_then(WireFormat::parse);
            if options.frame == WireFormat::Binary && accepted == Some(WireFormat::Binary) {
                client.set_format(WireFormat::Binary);
            }
            Ok(client)
        }
        ServerMsg::error(e) => Err(bad_data(format!(
            "hello refused by {addr}: {}: {}",
            e.code, e.detail
        ))),
        other => Err(bad_data(format!("unexpected hello response: {other:?}"))),
    }
}

fn expect_ok(response: ServerMsg, what: &str) -> io::Result<()> {
    match response {
        ServerMsg::ok => Ok(()),
        ServerMsg::error(e) => Err(bad_data(format!(
            "{what} refused: {}: {}",
            e.code, e.detail
        ))),
        other => Err(bad_data(format!("unexpected {what} response: {other:?}"))),
    }
}

fn close_session(client: &mut Client) -> io::Result<(Option<DeepStatsMsg>, ByeMsg)> {
    let (response, _busy) = client.rpc(&ClientMsg::stats_deep)?;
    let deep = match response {
        ServerMsg::stats_deep(deep) => Some(*deep),
        _ => None,
    };
    let (response, _busy) = client.rpc(&ClientMsg::shutdown)?;
    match response {
        ServerMsg::bye(bye) => Ok((deep, bye)),
        other => Err(bad_data(format!("unexpected shutdown response: {other:?}"))),
    }
}

/// Drive `instance` through ONE federated daemon in lockstep — the
/// fault-path harness. `peer` is whatever the daemon should dial for
/// outsourcing confirmation: a rival daemon, an unresponsive socket, or
/// `None` for lend-only mode. Every outer decision the daemon cannot
/// confirm degrades to a cooperative reject (which `validate_run` must
/// stay silent on — the degraded run is still a valid run).
pub fn drive_single(
    addr: &str,
    peer: Option<String>,
    platform: u16,
    instance: &Instance,
    options: &FedOptions,
) -> io::Result<DaemonReport> {
    let mut client = open_session(addr, peer, platform, instance, options)?;
    for event in instance.stream.iter() {
        match event {
            ArrivalEvent::Worker(spec) => {
                let msg = ClientMsg::worker(WorkerMsg {
                    spec: *spec,
                    history: instance.histories.get(&spec.id).cloned(),
                });
                let (response, _) = client.rpc(&msg)?;
                expect_ok(response, "worker")?;
            }
            ArrivalEvent::Request(spec) => {
                let (response, _) = client.rpc(&ClientMsg::request(*spec))?;
                if response_assignment(&response).is_none() {
                    return Err(bad_data(format!(
                        "request {}: non-decision response {response:?}",
                        spec.id.0
                    )));
                }
            }
        }
    }
    let (deep_stats, bye) = close_session(&mut client)?;
    Ok(DaemonReport {
        platform,
        bye,
        deep_stats,
    })
}

/// Drive `instance` through a federated daemon pair in lockstep.
///
/// `addr_a` owns platform 0 and `addr_b` platform 1; the two addresses
/// are also handed to the rival daemon as its peer link, so the pair
/// negotiates real wire offers in both directions. The instance must
/// name exactly two platforms.
pub fn drive_federated(
    addr_a: &str,
    addr_b: &str,
    instance: &Instance,
    options: &FedOptions,
) -> io::Result<FedReport> {
    if instance.platform_names.len() != 2 {
        return Err(bad_data(format!(
            "federation needs exactly 2 platforms, instance has {}",
            instance.platform_names.len()
        )));
    }
    let mut a = open_session(addr_a, Some(addr_b.to_string()), 0, instance, options)?;
    let mut b = open_session(addr_b, Some(addr_a.to_string()), 1, instance, options)?;

    let started = Instant::now();
    let mut divergent = Vec::new();
    for event in instance.stream.iter() {
        match event {
            ArrivalEvent::Worker(spec) => {
                let msg = ClientMsg::worker(WorkerMsg {
                    spec: *spec,
                    history: instance.histories.get(&spec.id).cloned(),
                });
                let (ra, _) = a.rpc(&msg)?;
                expect_ok(ra, "worker")?;
                let (rb, _) = b.rpc(&msg)?;
                expect_ok(rb, "worker")?;
            }
            ArrivalEvent::Request(spec) => {
                // Non-owner first: the lender's replica must have seen
                // the request (and recorded the lendable entry) before
                // the owner's offer can cross the wire.
                let owner_is_a = spec.platform == PlatformId(0);
                let (non_owner, owner) = if owner_is_a {
                    (&mut b, &mut a)
                } else {
                    (&mut a, &mut b)
                };
                let msg = ClientMsg::request(*spec);
                let (lend_side, _) = non_owner.rpc(&msg)?;
                let (own_side, _) = owner.rpc(&msg)?;
                match (
                    response_assignment(&lend_side),
                    response_assignment(&own_side),
                ) {
                    (Some(x), Some(y)) => {
                        if canonical_assignment_json(x) != canonical_assignment_json(y) {
                            divergent.push(format!(
                                "request {}: owner decided {:?} but non-owner decided {:?}",
                                spec.id.0, y.kind, x.kind
                            ));
                        }
                    }
                    _ => {
                        return Err(bad_data(format!(
                            "request {}: non-decision response(s): {lend_side:?} / {own_side:?}",
                            spec.id.0
                        )))
                    }
                }
            }
        }
    }
    let wall_secs = started.elapsed().as_secs_f64();

    let (deep_a, bye_a) = close_session(&mut a)?;
    let (deep_b, bye_b) = close_session(&mut b)?;
    Ok(FedReport {
        events: instance.stream.len(),
        wall_secs,
        divergent_responses: divergent,
        daemons: vec![
            DaemonReport {
                platform: 0,
                bye: bye_a,
                deep_stats: deep_a,
            },
            DaemonReport {
                platform: 1,
                bye: bye_b,
                deep_stats: deep_b,
            },
        ],
    })
}

/// Canonicalize a JSON value for byte comparison: round-trip through
/// text so a value parsed off the wire and a value built locally compare
/// through the same representation.
fn canonical_text(value: &serde_json::Value) -> String {
    let text = serde_json::to_string(value).expect("canonical value serializes");
    let parsed: serde_json::Value = serde_json::from_str(&text).expect("round-trip");
    serde_json::to_string(&parsed).expect("canonical value serializes")
}

fn reference_run(instance: &Instance, options: &FedOptions) -> Result<RunResult, String> {
    let registry = MatcherRegistry::builtin();
    let factory = registry
        .resolve(&options.matcher)
        .map_err(|e| format!("unknown matcher {}: {e:?}", options.matcher))?;
    let mut matcher = factory();
    Ok(try_run_online(instance, matcher.as_mut(), options.seed))
}

/// Verify a federated drive against a local single-process replay of the
/// same instance and seed. Returns the list of violated invariants —
/// empty means the federated pair is byte-identical to the reference
/// and every paper invariant re-proves on each platform's slice.
pub fn verify(instance: &Instance, report: &FedReport, options: &FedOptions) -> Vec<String> {
    let mut failures = Vec::new();
    for d in &report.divergent_responses {
        failures.push(format!("live divergence: {d}"));
    }
    let reference = match reference_run(instance, options) {
        Ok(run) => run,
        Err(e) => {
            failures.push(e);
            return failures;
        }
    };
    let reference_canonical = canonical_text(&canonical_run_json(&reference));

    let mut projections = Vec::new();
    for daemon in &report.daemons {
        let p = PlatformId(daemon.platform);
        let tag = format!("platform {}", daemon.platform);
        // Full replica: the served run IS the batch run, byte for byte.
        let served = canonical_text(&daemon.bye.canonical);
        if served != reference_canonical {
            failures.push(format!(
                "{tag}: full-replica canonical differs from reference"
            ));
        }
        if !daemon.bye.audit_findings.is_empty() {
            failures.push(format!(
                "{tag}: server-side audit found {:?}",
                daemon.bye.audit_findings
            ));
        }
        // Owned-slice projection: canonical, digest, ledger, degradation.
        let projection = project_platform_run(&reference, p);
        match &daemon.bye.fed {
            None => failures.push(format!("{tag}: bye carries no fed half")),
            Some(fed) => {
                if fed.platform != daemon.platform {
                    failures.push(format!("{tag}: fed half claims platform {}", fed.platform));
                }
                if canonical_text(&fed.canonical)
                    != canonical_text(&canonical_run_json(&projection))
                {
                    failures.push(format!("{tag}: projected canonical differs from reference"));
                }
                if fed.digest != canonical_run_digest(&projection) {
                    failures.push(format!(
                        "{tag}: projected digest {} != locally derived {}",
                        fed.digest,
                        canonical_run_digest(&projection)
                    ));
                }
                let books = PlatformLedger::for_platform(p, &reference.assignments);
                if !fed.ledger.agrees_with(&books) {
                    failures.push(format!(
                        "{tag}: reported ledger {:?} disagrees with local books {:?}",
                        fed.ledger, books
                    ));
                }
                if fed.degraded_offers != 0 {
                    failures.push(format!(
                        "{tag}: {} offers degraded to cooperative rejects",
                        fed.degraded_offers
                    ));
                }
            }
        }
        // The per-platform slice re-proves every invariant it can see —
        // the Definition 2.3/2.4 rules the paper's payment bound rides
        // on. (Position continuity is audited on the full-replica log,
        // byte-compared to the reference above.)
        let slice_instance = project_platform_instance(instance, p);
        let findings = com_core::validate_platform_slice(&slice_instance, &projection, p);
        if !findings.is_empty() {
            failures.push(format!("{tag}: slice audit found {findings:?}"));
        }
        projections.push((p, projection));
    }

    // Merging the two owned slices rebuilds the reference run exactly.
    // (Each daemon's projection was byte-compared against the local one
    // above, so this is transitively a merge of the daemons' logs.)
    let parts: Vec<(PlatformId, &RunResult)> = projections.iter().map(|(p, r)| (*p, r)).collect();
    match merge_platform_runs(instance, &parts) {
        Err(e) => failures.push(format!("merge failed: {e}")),
        Ok(merged) => {
            if canonical_text(&canonical_run_json(&merged)) != reference_canonical {
                failures.push("merged platform slices differ from reference run".into());
            }
        }
    }
    failures
}

/// A federated daemon pair running in-process on ephemeral ports — the
/// loopback harness behind `matchfed` (no `--addr`) and the tests.
pub struct LoopbackPair {
    pub a: ServerHandle,
    pub b: ServerHandle,
}

impl LoopbackPair {
    /// Start two daemons with the given per-daemon config template (the
    /// bind address is overridden to an ephemeral port).
    pub fn start(template: &ServerConfig) -> io::Result<LoopbackPair> {
        let mut config = template.clone();
        config.addr = "127.0.0.1:0".into();
        let a = serve(config.clone())?;
        let b = serve(config)?;
        Ok(LoopbackPair { a, b })
    }

    pub fn addr_a(&self) -> String {
        self.a.addr().to_string()
    }

    pub fn addr_b(&self) -> String {
        self.b.addr().to_string()
    }

    /// Shut both daemons down, joining every thread.
    pub fn shutdown(self) {
        self.a.shutdown();
        self.b.shutdown();
    }
}

/// Drive + verify through a fresh in-process pair: the one-call harness.
/// Returns the drive report and the (empty when byte-identical) list of
/// violated invariants.
pub fn run_loopback(
    instance: &Instance,
    options: &FedOptions,
) -> io::Result<(FedReport, Vec<String>)> {
    let pair = LoopbackPair::start(&ServerConfig::default())?;
    let report = drive_federated(&pair.addr_a(), &pair.addr_b(), instance, options)?;
    let failures = verify(instance, &report, options);
    pair.shutdown();
    Ok((report, failures))
}
