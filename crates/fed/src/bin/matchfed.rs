//! `matchfed` — the federated loopback driver and byte-identity
//! verifier.
//!
//! Runs one `com-datagen` scenario through TWO federated `matchd`
//! daemons — each owning one platform, joined by the inter-daemon
//! outsourcing protocol — and verifies the federated outcome against a
//! local single-process batch run of the same instance and seed:
//! canonical runs, digests, per-platform projections, merged slices,
//! ledgers, audits, and zero degraded offers.
//!
//! ```text
//! matchfed --quick --strict                      # in-process pair
//! matchfed --quick --addr-file-a a.addr \
//!          --addr-file-b b.addr --strict         # two external matchd
//! ```
//!
//! Flags:
//!
//! * `--quick` — small synthetic scenario (400 requests, 120 workers).
//! * `--full-scale` — the full-scale city scenario (4000 requests, 1200
//!   workers).
//! * `--matcher <spec>` / `--seed <n>` — matcher and seed (both the
//!   daemons and the local reference use them).
//! * `--frame ndjson|binary` — wire framing for the client links (the
//!   peer links follow the session's framing).
//! * `--addr-a`, `--addr-b` — two external daemons instead of the
//!   in-process pair; `--addr-file-a` / `--addr-file-b` poll a
//!   `matchd --addr-file` drop instead (CI orchestration).
//! * `--deadline-ms <n>` — per-offer deadline.
//! * `--strict` — exit non-zero if any byte-identity invariant fails.
//! * `--json <path>` — write the machine-readable report.

use std::fs;
use std::time::{Duration, Instant};

use com_datagen::{generate, synthetic, SyntheticParams};
use com_fed::{drive_federated, verify, FedOptions, FedReport, LoopbackPair};
use com_serve::{ServerConfig, WireFormat};

struct Args {
    quick: bool,
    full_scale: bool,
    matcher: String,
    seed: u64,
    frame: WireFormat,
    deadline_ms: u64,
    strict: bool,
    json_out: Option<String>,
    addr_a: Option<String>,
    addr_b: Option<String>,
    addr_file_a: Option<String>,
    addr_file_b: Option<String>,
}

fn usage() -> ! {
    eprintln!(
        "usage: matchfed [--quick | --full-scale] [--matcher SPEC] [--seed N]\n\
         \x20               [--frame ndjson|binary] [--deadline-ms N] [--strict]\n\
         \x20               [--json PATH]\n\
         \x20               [--addr-a HOST:PORT --addr-b HOST:PORT]\n\
         \x20               [--addr-file-a PATH --addr-file-b PATH]"
    );
    std::process::exit(2)
}

fn parse_args() -> Args {
    let mut args = Args {
        quick: false,
        full_scale: false,
        matcher: "demcom".into(),
        seed: 42,
        frame: WireFormat::Ndjson,
        deadline_ms: com_serve::DEFAULT_OFFER_DEADLINE_MS,
        strict: false,
        json_out: None,
        addr_a: None,
        addr_b: None,
        addr_file_a: None,
        addr_file_b: None,
    };
    let mut argv = std::env::args().skip(1);
    let next = |flag: &str, argv: &mut dyn Iterator<Item = String>| -> String {
        argv.next().unwrap_or_else(|| {
            eprintln!("{flag} needs a value");
            usage()
        })
    };
    while let Some(arg) = argv.next() {
        match arg.as_str() {
            "--quick" => args.quick = true,
            "--full-scale" => args.full_scale = true,
            "--matcher" => args.matcher = next("--matcher", &mut argv),
            "--seed" => {
                args.seed = next("--seed", &mut argv).parse().unwrap_or_else(|_| {
                    eprintln!("--seed needs an integer");
                    usage()
                })
            }
            "--frame" => {
                let token = next("--frame", &mut argv);
                args.frame = WireFormat::parse(&token).unwrap_or_else(|| {
                    eprintln!("--frame must be ndjson or binary");
                    usage()
                })
            }
            "--deadline-ms" => {
                args.deadline_ms = next("--deadline-ms", &mut argv)
                    .parse()
                    .unwrap_or_else(|_| {
                        eprintln!("--deadline-ms needs an integer");
                        usage()
                    })
            }
            "--strict" => args.strict = true,
            "--json" => args.json_out = Some(next("--json", &mut argv)),
            "--addr-a" => args.addr_a = Some(next("--addr-a", &mut argv)),
            "--addr-b" => args.addr_b = Some(next("--addr-b", &mut argv)),
            "--addr-file-a" => args.addr_file_a = Some(next("--addr-file-a", &mut argv)),
            "--addr-file-b" => args.addr_file_b = Some(next("--addr-file-b", &mut argv)),
            "--help" | "-h" => usage(),
            other => {
                eprintln!("unknown flag {other}");
                usage()
            }
        }
    }
    args
}

/// Poll a `matchd --addr-file` drop until it holds an address (the
/// daemon writes it atomically once the listener is live).
fn wait_addr_file(path: &str) -> String {
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        if let Ok(text) = fs::read_to_string(path) {
            let addr = text.trim();
            if !addr.is_empty() {
                return addr.to_string();
            }
        }
        if Instant::now() >= deadline {
            eprintln!("no address appeared in {path} within 10s");
            std::process::exit(2);
        }
        std::thread::sleep(Duration::from_millis(25));
    }
}

fn report_json(
    scenario: &str,
    args: &Args,
    report: &FedReport,
    failures: &[String],
) -> serde_json::Value {
    let daemons: Vec<serde_json::Value> = report
        .daemons
        .iter()
        .map(|d| {
            let fed = d.bye.fed.as_ref();
            let stats = d.deep_stats.as_ref().and_then(|s| s.federation.as_ref());
            let offer_phase = d
                .deep_stats
                .as_ref()
                .and_then(|s| s.phases.iter().find(|p| p.phase == "fed-offer"));
            serde_json::json!({
                "platform": d.platform,
                "revenue": fed.map(|f| f.ledger.revenue),
                "outsource_paid": fed.map(|f| f.ledger.outsource_paid),
                "outsource_earned": fed.map(|f| f.ledger.outsource_earned),
                "degraded_offers": fed.map(|f| f.degraded_offers),
                "digest": fed.map(|f| f.digest.clone()),
                "offers_sent": stats.map(|s| s.offers_sent),
                "offers_accepted": stats.map(|s| s.offers_accepted),
                "lends_granted": stats.map(|s| s.lends_granted),
                "offer_rtt_p50_us": offer_phase.map(|p| p.p50_ns as f64 / 1e3),
                "offer_rtt_p99_us": offer_phase.map(|p| p.p99_ns as f64 / 1e3),
            })
        })
        .collect();
    serde_json::json!({
        "scenario": scenario,
        "matcher": args.matcher,
        "seed": args.seed,
        "frame": args.frame.as_str(),
        "events": report.events,
        "events_per_sec": report.events_per_sec(),
        "daemons": daemons,
        "verified": failures.is_empty(),
        "failures": failures,
    })
}

fn main() {
    let args = parse_args();
    let scenario_name = if args.full_scale {
        "full-scale"
    } else {
        "quick"
    };
    let scenario = if args.full_scale {
        synthetic(SyntheticParams {
            n_requests: 4000,
            n_workers: 1200,
            ..SyntheticParams::default()
        })
    } else {
        // --quick and the default are the same small scenario.
        synthetic(SyntheticParams {
            n_requests: 400,
            n_workers: 120,
            ..SyntheticParams::default()
        })
    };
    let instance = generate(&scenario);
    let options = FedOptions {
        matcher: args.matcher.clone(),
        seed: args.seed,
        frame: args.frame,
        deadline_ms: args.deadline_ms,
        fed_sid: 1,
    };

    // Resolve the daemon pair: external addresses, addr-file drops, or a
    // fresh in-process pair.
    let external_a = args
        .addr_a
        .clone()
        .or_else(|| args.addr_file_a.as_deref().map(wait_addr_file));
    let external_b = args
        .addr_b
        .clone()
        .or_else(|| args.addr_file_b.as_deref().map(wait_addr_file));
    let (pair, addr_a, addr_b) = match (external_a, external_b) {
        (Some(a), Some(b)) => (None, a, b),
        (None, None) => {
            let pair = LoopbackPair::start(&ServerConfig::default()).unwrap_or_else(|e| {
                eprintln!("cannot start in-process pair: {e}");
                std::process::exit(2)
            });
            let (a, b) = (pair.addr_a(), pair.addr_b());
            (Some(pair), a, b)
        }
        _ => {
            eprintln!("provide both daemon addresses or neither");
            usage()
        }
    };

    let report = drive_federated(&addr_a, &addr_b, &instance, &options).unwrap_or_else(|e| {
        eprintln!("federated drive failed: {e}");
        std::process::exit(1)
    });
    let failures = verify(&instance, &report, &options);
    if let Some(pair) = pair {
        pair.shutdown();
    }

    println!(
        "matchfed {scenario_name}: {} events through 2 daemons in {:.2}s ({:.0} events/s, frame={})",
        report.events,
        report.wall_secs,
        report.events_per_sec(),
        args.frame.as_str(),
    );
    for d in &report.daemons {
        let fed = d.bye.fed.as_ref();
        let stats = d.deep_stats.as_ref().and_then(|s| s.federation.as_ref());
        println!(
            "  platform {}: revenue {:.2}  paid {:.2}  earned {:.2}  offers {}→{} accepted  lent {}  degraded {}  digest {}",
            d.platform,
            fed.map(|f| f.ledger.revenue).unwrap_or(f64::NAN),
            fed.map(|f| f.ledger.outsource_paid).unwrap_or(f64::NAN),
            fed.map(|f| f.ledger.outsource_earned).unwrap_or(f64::NAN),
            stats.map(|s| s.offers_sent).unwrap_or(0),
            stats.map(|s| s.offers_accepted).unwrap_or(0),
            stats.map(|s| s.lends_granted).unwrap_or(0),
            fed.map(|f| f.degraded_offers).unwrap_or(0),
            fed.map(|f| f.digest.as_str()).unwrap_or("-"),
        );
    }
    if failures.is_empty() {
        println!("  verified: federated run is byte-identical to the single-process run");
    } else {
        println!("  VERIFICATION FAILED:");
        for f in &failures {
            println!("    - {f}");
        }
    }

    if let Some(path) = &args.json_out {
        let value = report_json(scenario_name, &args, &report, &failures);
        let text = serde_json::to_string(&value).expect("report serializes");
        fs::write(path, text).unwrap_or_else(|e| {
            eprintln!("cannot write {path}: {e}");
            std::process::exit(2)
        });
    }
    if args.strict && !failures.is_empty() {
        std::process::exit(1);
    }
}
