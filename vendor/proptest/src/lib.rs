//! Offline stand-in for [`proptest`](https://docs.rs/proptest).
//!
//! Same macro surface (`proptest!`, `prop_assert!`, `prop_assert_eq!`,
//! `prop_assert_ne!`) and the strategy combinators this workspace uses
//! (numeric ranges, tuples, `collection::vec`, `bool::ANY`), but with a
//! much simpler engine: each test case draws inputs from a seeded RNG
//! derived from the case index, so runs are fully deterministic, and
//! failures report the case seed instead of shrinking.

pub mod strategy {
    use crate::test_runner::TestRng;
    use rand::Rng;
    use std::ops::{Range, RangeInclusive};

    /// A source of random values of one type. Unlike upstream there is no
    /// value tree: sampling draws a plain value and failures don't shrink.
    pub trait Strategy {
        type Value;
        fn sample(&self, rng: &mut TestRng) -> Self::Value;
    }

    impl<S: Strategy + ?Sized> Strategy for &S {
        type Value = S::Value;
        fn sample(&self, rng: &mut TestRng) -> Self::Value {
            (**self).sample(rng)
        }
    }

    macro_rules! impl_range_strategy {
        ($($ty:ty),*) => {$(
            impl Strategy for Range<$ty> {
                type Value = $ty;
                fn sample(&self, rng: &mut TestRng) -> $ty {
                    rng.random_range(self.clone())
                }
            }
            impl Strategy for RangeInclusive<$ty> {
                type Value = $ty;
                fn sample(&self, rng: &mut TestRng) -> $ty {
                    rng.random_range(self.clone())
                }
            }
        )*};
    }
    impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

    /// A strategy that always yields the same value.
    #[derive(Clone, Debug)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn sample(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    macro_rules! impl_tuple_strategy {
        ($(($($name:ident . $idx:tt),+))*) => {$(
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                fn sample(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.sample(rng),)+)
                }
            }
        )*};
    }

    impl_tuple_strategy! {
        (A.0)
        (A.0, B.1)
        (A.0, B.1, C.2)
        (A.0, B.1, C.2, D.3)
        (A.0, B.1, C.2, D.3, E.4)
        (A.0, B.1, C.2, D.3, E.4, F.5)
    }
}

pub mod bool {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use rand::Rng;

    #[derive(Clone, Copy, Debug)]
    pub struct Any;

    /// Uniformly random `bool`.
    pub const ANY: Any = Any;

    impl Strategy for Any {
        type Value = bool;
        fn sample(&self, rng: &mut TestRng) -> bool {
            rng.random_bool(0.5)
        }
    }
}

pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use rand::Rng;
    use std::ops::Range;

    /// Length bounds for [`vec`]; half-open like upstream's `0..12`.
    #[derive(Clone, Debug)]
    pub struct SizeRange {
        start: usize,
        end: usize,
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            SizeRange {
                start: r.start,
                end: r.end,
            }
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { start: n, end: n + 1 }
        }
    }

    #[derive(Clone, Debug)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = if self.size.start + 1 >= self.size.end {
                self.size.start
            } else {
                rng.random_range(self.size.start..self.size.end)
            };
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }
}

pub mod test_runner {
    use rand::SeedableRng;

    pub type TestRng = rand::rngs::StdRng;

    /// How a single test case failed.
    #[derive(Debug, Clone, PartialEq)]
    pub enum TestCaseError {
        /// Assertion failure: aborts the whole test.
        Fail(String),
        /// Input rejection: the case is skipped (upstream `prop_assume!`).
        Reject(String),
    }

    impl TestCaseError {
        pub fn fail(msg: impl Into<String>) -> Self {
            TestCaseError::Fail(msg.into())
        }

        pub fn reject(msg: impl Into<String>) -> Self {
            TestCaseError::Reject(msg.into())
        }
    }

    impl std::fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            match self {
                TestCaseError::Fail(m) => write!(f, "test case failed: {m}"),
                TestCaseError::Reject(m) => write!(f, "input rejected: {m}"),
            }
        }
    }

    #[derive(Clone, Debug)]
    pub struct ProptestConfig {
        pub cases: u32,
    }

    impl ProptestConfig {
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 256 }
        }
    }

    /// Per-case RNG: a fixed function of the case index, so every run of
    /// the suite replays the same inputs (no persistence files needed).
    pub fn case_rng(case: u32) -> TestRng {
        TestRng::seed_from_u64(0x9e37_79b9_7f4a_7c15u64.wrapping_mul(u64::from(case) + 1))
    }

    pub fn run(
        config: &ProptestConfig,
        mut case: impl FnMut(&mut TestRng) -> Result<(), TestCaseError>,
    ) {
        for i in 0..config.cases {
            let mut rng = case_rng(i);
            match case(&mut rng) {
                Ok(()) => {}
                Err(TestCaseError::Reject(_)) => {}
                Err(TestCaseError::Fail(msg)) => {
                    panic!("proptest: case {i}/{} failed: {msg}", config.cases)
                }
            }
        }
    }
}

pub mod prelude {
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!(($config); $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!(($crate::test_runner::ProptestConfig::default()); $($rest)*);
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (($config:expr); $(
        $(#[$meta:meta])*
        fn $name:ident($($parm:pat in $strategy:expr),* $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let __config = $config;
            $crate::test_runner::run(&__config, |__rng| {
                $(let $parm = $crate::strategy::Strategy::sample(&($strategy), __rng);)*
                let __out: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                    (|| {
                        $body
                        ::std::result::Result::Ok(())
                    })();
                __out
            });
        }
    )*};
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {{
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                ::std::format!($($fmt)+),
            ));
        }
    }};
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let __l = $left;
        let __r = $right;
        $crate::prop_assert!(
            __l == __r,
            "assertion failed: `{} == {}` (left: `{:?}`, right: `{:?}`)",
            stringify!($left), stringify!($right), __l, __r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let __l = $left;
        let __r = $right;
        $crate::prop_assert!(__l == __r, $($fmt)+);
    }};
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let __l = $left;
        let __r = $right;
        $crate::prop_assert!(
            __l != __r,
            "assertion failed: `{} != {}` (both: `{:?}`)",
            stringify!($left), stringify!($right), __l
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let __l = $left;
        let __r = $right;
        $crate::prop_assert!(__l != __r, $($fmt)+);
    }};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;
    use crate::strategy::Strategy;
    use crate::test_runner::case_rng;

    #[test]
    fn sampling_is_deterministic_per_case() {
        let s = (0.0f64..1.0, 0u64..100);
        let a = s.sample(&mut case_rng(3));
        let b = s.sample(&mut case_rng(3));
        assert_eq!(a, b);
        let c = s.sample(&mut case_rng(4));
        assert_ne!(a, c);
    }

    #[test]
    fn vec_strategy_respects_bounds() {
        let s = crate::collection::vec(0u64..10, 2..5);
        for i in 0..200 {
            let v = s.sample(&mut case_rng(i));
            assert!((2..5).contains(&v.len()), "len {} out of bounds", v.len());
            assert!(v.iter().all(|&x| x < 10));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn macro_draws_are_in_range(
            x in -2.5f64..2.5,
            n in 1usize..10,
            flag in crate::bool::ANY,
        ) {
            prop_assert!((-2.5..2.5).contains(&x));
            prop_assert!((1..10).contains(&n));
            prop_assert!(flag || !flag);
            prop_assert_ne!(n, 0);
            prop_assert_eq!(n.min(9), n);
        }
    }
}
