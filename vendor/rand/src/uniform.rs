//! Uniform sampling from ranges.

use std::ops::{Range, RangeInclusive};

use crate::RngCore;

/// A range that can produce uniform samples of `T`.
pub trait SampleRange<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Lemire's widening-multiplication method: an unbiased draw from
/// `[0, range)` for `range >= 1`.
#[inline]
fn lemire_u64<R: RngCore + ?Sized>(rng: &mut R, range: u64) -> u64 {
    debug_assert!(range >= 1);
    if range == 0 {
        // Full 64-bit domain (only reachable through `0..=u64::MAX`).
        return rng.next_u64();
    }
    let threshold = range.wrapping_neg() % range;
    loop {
        let x = rng.next_u64();
        let m = (x as u128) * (range as u128);
        if (m as u64) >= threshold {
            return (m >> 64) as u64;
        }
    }
}

macro_rules! impl_int_range {
    ($($ty:ty),*) => {$(
        impl SampleRange<$ty> for Range<$ty> {
            #[inline]
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $ty {
                assert!(self.start < self.end, "cannot sample from empty range");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                self.start.wrapping_add(lemire_u64(rng, span) as $ty)
            }
        }

        impl SampleRange<$ty> for RangeInclusive<$ty> {
            #[inline]
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $ty {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample from empty range");
                let span = (end as u64).wrapping_sub(start as u64).wrapping_add(1);
                start.wrapping_add(lemire_u64(rng, span) as $ty)
            }
        }
    )*};
}

impl_int_range!(u8, u16, u32, u64, usize);

macro_rules! impl_signed_range {
    ($($ty:ty),*) => {$(
        impl SampleRange<$ty> for Range<$ty> {
            #[inline]
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $ty {
                assert!(self.start < self.end, "cannot sample from empty range");
                let span = (self.end as i64).wrapping_sub(self.start as i64) as u64;
                self.start.wrapping_add(lemire_u64(rng, span) as $ty)
            }
        }

        impl SampleRange<$ty> for RangeInclusive<$ty> {
            #[inline]
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $ty {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample from empty range");
                let span = ((end as i64).wrapping_sub(start as i64) as u64).wrapping_add(1);
                start.wrapping_add(lemire_u64(rng, span) as $ty)
            }
        }
    )*};
}

impl_signed_range!(i8, i16, i32, i64, isize);

impl SampleRange<f64> for Range<f64> {
    #[inline]
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(
            self.start < self.end && (self.end - self.start).is_finite(),
            "cannot sample from empty or non-finite range"
        );
        let unit: f64 = crate::Random::random(rng); // [0, 1)
        let value = self.start + unit * (self.end - self.start);
        if value >= self.end {
            f64::from_bits(self.end.to_bits() - 1).max(self.start)
        } else {
            value
        }
    }
}

impl SampleRange<f32> for Range<f32> {
    #[inline]
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f32 {
        assert!(
            self.start < self.end && (self.end - self.start).is_finite(),
            "cannot sample from empty or non-finite range"
        );
        let unit: f32 = crate::Random::random(rng); // [0, 1)
        let value = self.start + unit * (self.end - self.start);
        if value >= self.end {
            f32::from_bits(self.end.to_bits() - 1).max(self.start)
        } else {
            value
        }
    }
}

macro_rules! impl_float_inclusive {
    ($($ty:ty),*) => {$(
        impl SampleRange<$ty> for RangeInclusive<$ty> {
            #[inline]
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $ty {
                let (start, end) = (*self.start(), *self.end());
                assert!(
                    start <= end && (end - start).is_finite(),
                    "cannot sample from empty or non-finite range"
                );
                if start == end {
                    return start;
                }
                // [0, 1) scaled over the span; the end point has measure
                // zero so half-open sampling serves inclusive semantics.
                let unit: $ty = crate::Random::random(rng);
                (start + unit * (end - start)).min(end)
            }
        }
    )*};
}

impl_float_inclusive!(f32, f64);

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rngs::StdRng;
    use crate::{Rng, SeedableRng};

    #[test]
    fn signed_ranges_include_negatives() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut saw_negative = false;
        for _ in 0..1_000 {
            let v: i32 = rng.random_range(-5..5);
            assert!((-5..5).contains(&v));
            saw_negative |= v < 0;
        }
        assert!(saw_negative);
    }

    #[test]
    fn single_value_ranges() {
        let mut rng = StdRng::seed_from_u64(3);
        assert_eq!(rng.random_range(7..8u32), 7);
        assert_eq!(rng.random_range(7..=7u64), 7);
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn empty_range_panics() {
        let mut rng = StdRng::seed_from_u64(4);
        let _: u32 = rng.random_range(5..5);
    }
}
