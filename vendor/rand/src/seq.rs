//! Sequence helpers (shuffling, choosing).

use crate::{Rng, RngCore};

/// Slice extensions mirroring `rand::seq::SliceRandom`.
pub trait SliceRandom {
    type Item;

    /// In-place Fisher–Yates shuffle.
    fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);

    /// A uniformly chosen element, `None` when empty.
    fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
}

impl<T> SliceRandom for [T] {
    type Item = T;

    fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
        for i in (1..self.len()).rev() {
            let j = rng.random_range(0..=i);
            self.swap(i, j);
        }
    }

    fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
        if self.is_empty() {
            None
        } else {
            Some(&self[rng.random_range(0..self.len())])
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rngs::StdRng;
    use crate::SeedableRng;

    #[test]
    fn choose_covers_all_elements() {
        let mut rng = StdRng::seed_from_u64(8);
        let items = [1, 2, 3];
        let mut seen = [false; 3];
        for _ in 0..200 {
            let &v = items.choose(&mut rng).unwrap();
            seen[v - 1] = true;
        }
        assert_eq!(seen, [true, true, true]);
        let empty: [u8; 0] = [];
        assert!(empty.choose(&mut rng).is_none());
    }
}
