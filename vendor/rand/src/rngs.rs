//! Concrete generators.

use crate::{RngCore, SeedableRng};

/// The standard generator: ChaCha with 12 rounds (the algorithm behind the
/// real `rand::rngs::StdRng`), emitting the keystream as a sequence of
/// little-endian `u32` words.
#[derive(Debug, Clone)]
pub struct StdRng {
    /// ChaCha key (8 words from the 32-byte seed).
    key: [u32; 8],
    /// 64-bit block counter (words 12–13 of the state).
    counter: u64,
    /// Current output block.
    block: [u32; 16],
    /// Next word to emit from `block`; 16 means "generate a new block".
    index: usize,
}

const CHACHA_CONSTANTS: [u32; 4] = [0x6170_7865, 0x3320_646e, 0x7962_2d32, 0x6b20_6574];
const ROUNDS: usize = 12;

#[inline(always)]
fn quarter_round(state: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(16);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(12);
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(8);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(7);
}

impl StdRng {
    fn refill(&mut self) {
        let mut state = [0u32; 16];
        state[..4].copy_from_slice(&CHACHA_CONSTANTS);
        state[4..12].copy_from_slice(&self.key);
        state[12] = self.counter as u32;
        state[13] = (self.counter >> 32) as u32;
        // Words 14–15 (the nonce) stay zero, as in a freshly seeded rng.
        let initial = state;
        for _ in 0..ROUNDS / 2 {
            // Column round.
            quarter_round(&mut state, 0, 4, 8, 12);
            quarter_round(&mut state, 1, 5, 9, 13);
            quarter_round(&mut state, 2, 6, 10, 14);
            quarter_round(&mut state, 3, 7, 11, 15);
            // Diagonal round.
            quarter_round(&mut state, 0, 5, 10, 15);
            quarter_round(&mut state, 1, 6, 11, 12);
            quarter_round(&mut state, 2, 7, 8, 13);
            quarter_round(&mut state, 3, 4, 9, 14);
        }
        for i in 0..16 {
            self.block[i] = state[i].wrapping_add(initial[i]);
        }
        self.counter = self.counter.wrapping_add(1);
        self.index = 0;
    }
}

impl SeedableRng for StdRng {
    type Seed = [u8; 32];

    fn from_seed(seed: Self::Seed) -> Self {
        let mut key = [0u32; 8];
        for (i, chunk) in seed.chunks_exact(4).enumerate() {
            key[i] = u32::from_le_bytes(chunk.try_into().unwrap());
        }
        StdRng {
            key,
            counter: 0,
            block: [0; 16],
            index: 16,
        }
    }
}

impl RngCore for StdRng {
    #[inline]
    fn next_u32(&mut self) -> u32 {
        if self.index >= 16 {
            self.refill();
        }
        let word = self.block[self.index];
        self.index += 1;
        word
    }

    #[inline]
    fn next_u64(&mut self) -> u64 {
        let lo = self.next_u32() as u64;
        let hi = self.next_u32() as u64;
        lo | (hi << 32)
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(4) {
            let bytes = self.next_u32().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chacha_blocks_differ_and_stream_is_stable() {
        let mut rng = StdRng::seed_from_u64(0);
        let first: Vec<u32> = (0..32).map(|_| rng.next_u32()).collect();
        let mut again = StdRng::seed_from_u64(0);
        let second: Vec<u32> = (0..32).map(|_| again.next_u32()).collect();
        assert_eq!(first, second);
        // Two consecutive blocks must not repeat.
        assert_ne!(&first[..16], &first[16..]);
    }

    #[test]
    fn fill_bytes_matches_word_stream() {
        let mut a = StdRng::seed_from_u64(5);
        let mut b = StdRng::seed_from_u64(5);
        let mut buf = [0u8; 8];
        a.fill_bytes(&mut buf);
        let w0 = b.next_u32().to_le_bytes();
        let w1 = b.next_u32().to_le_bytes();
        assert_eq!(&buf[..4], &w0);
        assert_eq!(&buf[4..], &w1);
    }
}
