//! Offline stand-in for the [`rand`](https://crates.io/crates/rand) crate.
//!
//! The build environment for this repository has no access to the crates
//! registry, so the workspace vendors a minimal, dependency-free
//! implementation of the `rand 0.9` API surface it actually uses:
//!
//! * [`rngs::StdRng`] — a ChaCha12 generator (the same core algorithm the
//!   real `StdRng` wraps), seedable via [`SeedableRng::seed_from_u64`]
//!   with the same SplitMix64 seed expansion as `rand_core`.
//! * [`Rng::random_range`] over integer and float ranges (Lemire widening
//!   multiplication for integers, 53-bit mantissa scaling for floats).
//! * [`Rng::random`], [`Rng::random_bool`], and [`seq::SliceRandom`]'s
//!   Fisher–Yates [`seq::SliceRandom::shuffle`].
//!
//! The generator is fully deterministic per seed, which is all the
//! simulator requires (every algorithm-visible draw flows through one
//! seeded `StdRng`). It is **not** intended for cryptographic use.

pub mod rngs;
pub mod seq;

/// The core random source: a stream of `u32`/`u64` words.
pub trait RngCore {
    fn next_u32(&mut self) -> u32;
    fn next_u64(&mut self) -> u64;
    fn fill_bytes(&mut self, dest: &mut [u8]);
}

impl<T: RngCore + ?Sized> RngCore for &mut T {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

/// Seedable generators.
pub trait SeedableRng: Sized {
    type Seed: Sized + Default + AsRef<[u8]> + AsMut<[u8]>;

    fn from_seed(seed: Self::Seed) -> Self;

    /// Expand a `u64` into a full seed with SplitMix64 (the `rand_core`
    /// algorithm, so seeds mean the same thing they would upstream).
    fn seed_from_u64(mut state: u64) -> Self {
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(8) {
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^= z >> 31;
            let bytes = z.to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
        Self::from_seed(seed)
    }
}

mod uniform;
pub use uniform::SampleRange;

/// User-facing convenience methods over any [`RngCore`].
pub trait Rng: RngCore {
    /// A uniform draw from `range` (half-open or inclusive).
    ///
    /// # Panics
    /// Panics when the range is empty.
    fn random_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
    {
        range.sample_from(self)
    }

    /// A draw of a [`Random`]-implementing type over its full domain
    /// (`f64`/`f32` are uniform in `[0, 1)`).
    fn random<T: Random>(&mut self) -> T {
        T::random(self)
    }

    /// `true` with probability `p` (clamped to `[0, 1]`).
    fn random_bool(&mut self, p: f64) -> bool {
        let p = p.clamp(0.0, 1.0);
        // Compare against a 64-bit fixed-point threshold so p = 1.0 is
        // always true and p = 0.0 always false.
        if p >= 1.0 {
            self.next_u64();
            return true;
        }
        let threshold = (p * (u64::MAX as f64 + 1.0)) as u64;
        self.next_u64() < threshold
    }

    /// Fill `dest` with random bytes.
    fn fill(&mut self, dest: &mut [u8]) {
        self.fill_bytes(dest)
    }
}

impl<T: RngCore + ?Sized> Rng for T {}

/// Types drawable uniformly over their natural domain.
pub trait Random: Sized {
    fn random<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Random for u32 {
    fn random<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Random for u64 {
    fn random<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Random for bool {
    fn random<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32() & 1 == 1
    }
}

impl Random for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision.
    fn random<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Random for f32 {
    /// Uniform in `[0, 1)` with 24 bits of precision.
    fn random<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

pub mod prelude {
    pub use crate::rngs::StdRng;
    pub use crate::seq::SliceRandom;
    pub use crate::{Rng, RngCore, SeedableRng};
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rngs::StdRng;

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(StdRng::seed_from_u64(42).next_u64(), c.next_u64());
    }

    #[test]
    fn float_ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v: f64 = rng.random_range(2.0..5.0);
            assert!((2.0..5.0).contains(&v));
            let u: f64 = rng.random();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn int_ranges_cover_domain_uniformly() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut counts = [0usize; 6];
        for _ in 0..60_000 {
            let v: usize = rng.random_range(0..6);
            counts[v] += 1;
        }
        for &c in &counts {
            assert!((8_000..12_000).contains(&c), "skewed bucket: {c}");
        }
        // Inclusive ranges include the upper bound.
        let mut saw_max = false;
        for _ in 0..1_000 {
            if rng.random_range(1..=4u64) == 4 {
                saw_max = true;
            }
        }
        assert!(saw_max);
    }

    #[test]
    fn random_bool_edge_cases() {
        let mut rng = StdRng::seed_from_u64(1);
        assert!(rng.random_bool(1.0));
        assert!(!rng.random_bool(0.0));
        let hits = (0..10_000).filter(|_| rng.random_bool(0.25)).count();
        assert!((2_000..3_000).contains(&hits), "p=0.25 produced {hits}");
    }

    #[test]
    fn shuffle_is_a_permutation() {
        use crate::seq::SliceRandom;
        let mut rng = StdRng::seed_from_u64(11);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "50 elements should not shuffle to identity");
    }
}
