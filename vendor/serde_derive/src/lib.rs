//! Offline stand-in for `serde_derive`.
//!
//! Generates `::serde::ser::Serialize` / `::serde::de::Deserialize` impls
//! against the vendored value-tree serde. No `syn`/`quote`: the input
//! `TokenStream` is walked directly (the shapes this workspace derives on
//! are plain structs and enums without generics), and the impl is emitted
//! as a string and re-parsed.
//!
//! Supported field attributes: `#[serde(default)]`,
//! `#[serde(default = "path")]`, `#[serde(skip_serializing_if = "path")]`.
//! Anything else panics at expansion time rather than silently changing
//! the wire format.

use proc_macro::{Delimiter, TokenStream, TokenTree};

// ---------------------------------------------------------------------------
// Input model
// ---------------------------------------------------------------------------

#[derive(Default)]
struct FieldAttrs {
    default: Option<DefaultKind>,
    skip_serializing_if: Option<String>,
}

enum DefaultKind {
    Std,
    Path(String),
}

struct Field {
    name: String,
    attrs: FieldAttrs,
}

enum Fields {
    Named(Vec<Field>),
    Tuple(usize),
    Unit,
}

struct Variant {
    name: String,
    fields: Fields,
}

enum Input {
    Struct { name: String, fields: Fields },
    Enum { name: String, variants: Vec<Variant> },
}

// ---------------------------------------------------------------------------
// Token cursor
// ---------------------------------------------------------------------------

struct Cursor {
    toks: Vec<TokenTree>,
    pos: usize,
}

impl Cursor {
    fn new(stream: TokenStream) -> Self {
        Cursor {
            toks: stream.into_iter().collect(),
            pos: 0,
        }
    }

    fn peek(&self) -> Option<&TokenTree> {
        self.toks.get(self.pos)
    }

    fn next(&mut self) -> Option<TokenTree> {
        let t = self.toks.get(self.pos).cloned();
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn expect_ident(&mut self) -> String {
        match self.next() {
            Some(TokenTree::Ident(id)) => id.to_string(),
            other => panic!("serde_derive: expected identifier, found {other:?}"),
        }
    }

    fn eat_punct(&mut self, ch: char) -> bool {
        if matches!(self.peek(), Some(TokenTree::Punct(p)) if p.as_char() == ch) {
            self.pos += 1;
            true
        } else {
            false
        }
    }
}

fn is_punct(t: &TokenTree, ch: char) -> bool {
    matches!(t, TokenTree::Punct(p) if p.as_char() == ch)
}

// ---------------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------------

/// Consume leading attributes. Field/variant `#[serde(...)]` attributes are
/// folded into the returned set; doc comments and everything else are
/// skipped.
fn collect_attrs(c: &mut Cursor) -> FieldAttrs {
    let mut attrs = FieldAttrs::default();
    while matches!(c.peek(), Some(t) if is_punct(t, '#')) {
        c.next();
        let group = match c.next() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Bracket => g,
            other => panic!("serde_derive: malformed attribute, found {other:?}"),
        };
        let mut inner = Cursor::new(group.stream());
        match inner.next() {
            Some(TokenTree::Ident(id)) if id.to_string() == "serde" => {
                match inner.next() {
                    Some(TokenTree::Group(list)) if list.delimiter() == Delimiter::Parenthesis => {
                        parse_serde_list(list.stream(), &mut attrs);
                    }
                    other => panic!("serde_derive: malformed #[serde] attribute: {other:?}"),
                }
            }
            _ => {} // doc comments, cfg, other derives' helpers: ignore
        }
    }
    attrs
}

fn parse_serde_list(stream: TokenStream, attrs: &mut FieldAttrs) {
    let mut c = Cursor::new(stream);
    while let Some(t) = c.next() {
        let TokenTree::Ident(id) = t else {
            continue; // separating comma
        };
        let key = id.to_string();
        let mut value: Option<String> = None;
        if c.eat_punct('=') {
            match c.next() {
                Some(TokenTree::Literal(lit)) => value = Some(strip_quotes(&lit.to_string())),
                other => panic!("serde_derive: expected string literal after `{key} =`, found {other:?}"),
            }
        }
        match (key.as_str(), value) {
            ("default", None) => attrs.default = Some(DefaultKind::Std),
            ("default", Some(path)) => attrs.default = Some(DefaultKind::Path(path)),
            ("skip_serializing_if", Some(path)) => attrs.skip_serializing_if = Some(path),
            (other, _) => panic!(
                "serde_derive (vendored): unsupported serde attribute `{other}` — \
                 supported: default, default = \"path\", skip_serializing_if = \"path\""
            ),
        }
    }
}

fn strip_quotes(lit: &str) -> String {
    lit.trim_matches('"').to_string()
}

fn skip_vis(c: &mut Cursor) {
    if matches!(c.peek(), Some(TokenTree::Ident(id)) if id.to_string() == "pub") {
        c.next();
        // `pub(crate)` / `pub(super)` restriction
        if matches!(c.peek(), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
        {
            c.next();
        }
    }
}

/// Skip a type (everything up to the next top-level `,`), tracking angle
/// bracket depth so generic arguments' commas are not mistaken for field
/// separators.
fn skip_type(c: &mut Cursor) {
    let mut angle = 0i32;
    while let Some(t) = c.peek() {
        if is_punct(t, ',') && angle == 0 {
            c.next();
            return;
        }
        if is_punct(t, '<') {
            angle += 1;
        } else if is_punct(t, '>') {
            angle -= 1;
        }
        c.next();
    }
}

fn parse_named_fields(stream: TokenStream) -> Vec<Field> {
    let mut c = Cursor::new(stream);
    let mut fields = Vec::new();
    while c.peek().is_some() {
        let attrs = collect_attrs(&mut c);
        skip_vis(&mut c);
        let name = c.expect_ident();
        if !c.eat_punct(':') {
            panic!("serde_derive: expected `:` after field `{name}`");
        }
        skip_type(&mut c);
        fields.push(Field { name, attrs });
    }
    fields
}

fn count_tuple_fields(stream: TokenStream) -> usize {
    let mut angle = 0i32;
    let mut count = 0usize;
    let mut segment_has_tokens = false;
    for t in stream {
        if is_punct(&t, ',') && angle == 0 {
            if segment_has_tokens {
                count += 1;
            }
            segment_has_tokens = false;
            continue;
        }
        if is_punct(&t, '<') {
            angle += 1;
        } else if is_punct(&t, '>') {
            angle -= 1;
        }
        segment_has_tokens = true;
    }
    if segment_has_tokens {
        count += 1;
    }
    count
}

fn parse_variants(stream: TokenStream) -> Vec<Variant> {
    let mut c = Cursor::new(stream);
    let mut variants = Vec::new();
    while c.peek().is_some() {
        let _attrs = collect_attrs(&mut c);
        let name = c.expect_ident();
        let fields = match c.peek() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let n = count_tuple_fields(g.stream());
                c.next();
                Fields::Tuple(n)
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let f = parse_named_fields(g.stream());
                c.next();
                Fields::Named(f)
            }
            _ => Fields::Unit,
        };
        // Optional explicit discriminant (`= expr`) is not supported with
        // data-carrying serde enums; skip tokens up to the separator.
        while let Some(t) = c.peek() {
            if is_punct(t, ',') {
                c.next();
                break;
            }
            c.next();
        }
        variants.push(Variant { name, fields });
    }
    variants
}

fn parse_input(input: TokenStream) -> Input {
    let mut c = Cursor::new(input);
    let _ = collect_attrs(&mut c); // container attrs: doc comments etc.
    skip_vis(&mut c);
    let kind = c.expect_ident();
    let name = c.expect_ident();
    if matches!(c.peek(), Some(t) if is_punct(t, '<')) {
        panic!("serde_derive (vendored): generic types are not supported (`{name}`)");
    }
    match kind.as_str() {
        "struct" => {
            let fields = match c.peek() {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                    Fields::Named(parse_named_fields(g.stream()))
                }
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                    Fields::Tuple(count_tuple_fields(g.stream()))
                }
                Some(t) if is_punct(t, ';') => Fields::Unit,
                other => panic!("serde_derive: unexpected struct body: {other:?}"),
            };
            Input::Struct { name, fields }
        }
        "enum" => {
            let variants = match c.peek() {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                    parse_variants(g.stream())
                }
                other => panic!("serde_derive: unexpected enum body: {other:?}"),
            };
            Input::Enum { name, variants }
        }
        other => panic!("serde_derive: expected `struct` or `enum`, found `{other}`"),
    }
}

// ---------------------------------------------------------------------------
// Codegen helpers
// ---------------------------------------------------------------------------

const CONTENT: &str = "::serde::content::Content";

fn str_content(s: &str) -> String {
    format!("{CONTENT}::Str(::std::string::String::from(\"{s}\"))")
}

/// `entries.push(...)` statements serializing named fields reachable via
/// `prefix` (`&self.name` for structs, bare `name` bindings for enum
/// struct variants).
fn ser_named_fields(fields: &[Field], access: impl Fn(&str) -> String) -> String {
    let mut out = String::new();
    for f in fields {
        let value = access(&f.name);
        let push = format!(
            "__entries.push(({key}, ::serde::ser::Serialize::to_content({value})));\n",
            key = str_content(&f.name),
        );
        match &f.attrs.skip_serializing_if {
            Some(path) => {
                out.push_str(&format!("if !{path}({value}) {{ {push} }}\n"));
            }
            None => out.push_str(&push),
        }
    }
    out
}

/// Field initializers (`name: match find(...) {...}`) deserializing named
/// fields out of a `__entries` slice binding.
fn de_named_fields(fields: &[Field]) -> String {
    let mut out = String::new();
    for f in fields {
        let missing = match &f.attrs.default {
            Some(DefaultKind::Std) => "::std::default::Default::default()".to_string(),
            Some(DefaultKind::Path(path)) => format!("{path}()"),
            None => format!("::serde::de::when_missing(\"{}\")?", f.name),
        };
        out.push_str(&format!(
            "{name}: match ::serde::content::find(__entries, \"{name}\") {{\n\
             ::std::option::Option::Some(__v) => ::serde::de::Deserialize::from_content(__v)?,\n\
             ::std::option::Option::None => {missing},\n\
             }},\n",
            name = f.name,
        ));
    }
    out
}

fn tuple_bindings(n: usize) -> Vec<String> {
    (0..n).map(|i| format!("__f{i}")).collect()
}

// ---------------------------------------------------------------------------
// Serialize derive
// ---------------------------------------------------------------------------

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let input = parse_input(input);
    let (name, body) = match &input {
        Input::Struct { name, fields } => (name, ser_struct_body(name, fields)),
        Input::Enum { name, variants } => (name, ser_enum_body(name, variants)),
    };
    let out = format!(
        "#[automatically_derived]\n\
         #[allow(clippy::all, unused_mut, non_snake_case)]\n\
         impl ::serde::ser::Serialize for {name} {{\n\
         fn to_content(&self) -> {CONTENT} {{\n{body}\n}}\n}}\n"
    );
    out.parse().expect("serde_derive: generated Serialize impl failed to parse")
}

fn ser_struct_body(_name: &str, fields: &Fields) -> String {
    match fields {
        Fields::Named(fields) => {
            let pushes = ser_named_fields(fields, |f| format!("&self.{f}"));
            format!(
                "let mut __entries: ::std::vec::Vec<({CONTENT}, {CONTENT})> = ::std::vec::Vec::new();\n\
                 {pushes}\
                 {CONTENT}::Map(__entries)"
            )
        }
        Fields::Tuple(1) => "::serde::ser::Serialize::to_content(&self.0)".to_string(),
        Fields::Tuple(n) => {
            let items: Vec<String> = (0..*n)
                .map(|i| format!("::serde::ser::Serialize::to_content(&self.{i})"))
                .collect();
            format!("{CONTENT}::Seq(::std::vec![{}])", items.join(", "))
        }
        Fields::Unit => format!("{CONTENT}::Null"),
    }
}

fn ser_enum_body(name: &str, variants: &[Variant]) -> String {
    let mut arms = String::new();
    for v in variants {
        let vname = &v.name;
        let tag = str_content(vname);
        match &v.fields {
            Fields::Unit => {
                arms.push_str(&format!("{name}::{vname} => {tag},\n"));
            }
            Fields::Tuple(1) => {
                arms.push_str(&format!(
                    "{name}::{vname}(__f0) => {CONTENT}::Map(::std::vec![({tag}, \
                     ::serde::ser::Serialize::to_content(__f0))]),\n"
                ));
            }
            Fields::Tuple(n) => {
                let binds = tuple_bindings(*n);
                let items: Vec<String> = binds
                    .iter()
                    .map(|b| format!("::serde::ser::Serialize::to_content({b})"))
                    .collect();
                arms.push_str(&format!(
                    "{name}::{vname}({binds}) => {CONTENT}::Map(::std::vec![({tag}, \
                     {CONTENT}::Seq(::std::vec![{items}]))]),\n",
                    binds = binds.join(", "),
                    items = items.join(", "),
                ));
            }
            Fields::Named(fields) => {
                let field_names: Vec<&str> = fields.iter().map(|f| f.name.as_str()).collect();
                let pushes = ser_named_fields(fields, |f| f.to_string());
                arms.push_str(&format!(
                    "{name}::{vname} {{ {pat} }} => {{\n\
                     let mut __entries: ::std::vec::Vec<({CONTENT}, {CONTENT})> = ::std::vec::Vec::new();\n\
                     {pushes}\
                     {CONTENT}::Map(::std::vec![({tag}, {CONTENT}::Map(__entries))])\n\
                     }},\n",
                    pat = field_names.join(", "),
                ));
            }
        }
    }
    format!("match self {{\n{arms}}}")
}

// ---------------------------------------------------------------------------
// Deserialize derive
// ---------------------------------------------------------------------------

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let input = parse_input(input);
    let (name, body) = match &input {
        Input::Struct { name, fields } => (name, de_struct_body(name, fields)),
        Input::Enum { name, variants } => (name, de_enum_body(name, variants)),
    };
    let out = format!(
        "#[automatically_derived]\n\
         #[allow(clippy::all, unused_mut, non_snake_case)]\n\
         impl ::serde::de::Deserialize for {name} {{\n\
         fn from_content(__c: &{CONTENT}) -> ::std::result::Result<Self, ::serde::de::Error> {{\n\
         {body}\n}}\n}}\n"
    );
    out.parse().expect("serde_derive: generated Deserialize impl failed to parse")
}

fn de_struct_body(name: &str, fields: &Fields) -> String {
    match fields {
        Fields::Named(fields) => {
            let inits = de_named_fields(fields);
            format!(
                "match __c {{\n\
                 {CONTENT}::Map(__entries) => ::std::result::Result::Ok({name} {{\n{inits}}}),\n\
                 __other => ::std::result::Result::Err(::serde::de::Error::unexpected(\"a map\", __other)),\n\
                 }}"
            )
        }
        Fields::Tuple(1) => format!(
            "::std::result::Result::Ok({name}(::serde::de::Deserialize::from_content(__c)?))"
        ),
        Fields::Tuple(n) => de_tuple_payload(name, *n, "__c"),
        Fields::Unit => format!(
            "match __c {{\n\
             {CONTENT}::Null => ::std::result::Result::Ok({name}),\n\
             __other => ::std::result::Result::Err(::serde::de::Error::unexpected(\"null\", __other)),\n\
             }}"
        ),
    }
}

/// `match <payload> { Seq of len n => Ok(Ctor(items...)), ... }`
fn de_tuple_payload(ctor: &str, n: usize, payload: &str) -> String {
    let items: Vec<String> = (0..n)
        .map(|i| format!("::serde::de::Deserialize::from_content(&__items[{i}])?"))
        .collect();
    format!(
        "match {payload} {{\n\
         {CONTENT}::Seq(__items) if __items.len() == {n} => \
         ::std::result::Result::Ok({ctor}({items})),\n\
         __other => ::std::result::Result::Err(::serde::de::Error::unexpected(\
         \"a sequence of length {n}\", __other)),\n\
         }}",
        items = items.join(", "),
    )
}

fn de_enum_body(name: &str, variants: &[Variant]) -> String {
    let mut unit_arms = String::new();
    let mut data_arms = String::new();
    for v in variants {
        let vname = &v.name;
        match &v.fields {
            Fields::Unit => {
                unit_arms.push_str(&format!(
                    "\"{vname}\" => ::std::result::Result::Ok({name}::{vname}),\n"
                ));
            }
            Fields::Tuple(1) => {
                data_arms.push_str(&format!(
                    "\"{vname}\" => ::std::result::Result::Ok({name}::{vname}(\
                     ::serde::de::Deserialize::from_content(__payload)?)),\n"
                ));
            }
            Fields::Tuple(n) => {
                let inner = de_tuple_payload(&format!("{name}::{vname}"), *n, "__payload");
                data_arms.push_str(&format!("\"{vname}\" => {inner},\n"));
            }
            Fields::Named(fields) => {
                let inits = de_named_fields(fields);
                data_arms.push_str(&format!(
                    "\"{vname}\" => match __payload {{\n\
                     {CONTENT}::Map(__entries) => ::std::result::Result::Ok({name}::{vname} {{\n{inits}}}),\n\
                     __other => ::std::result::Result::Err(::serde::de::Error::unexpected(\"a map\", __other)),\n\
                     }},\n"
                ));
            }
        }
    }
    format!(
        "match __c {{\n\
         {CONTENT}::Str(__s) => match __s.as_str() {{\n\
         {unit_arms}\
         __other => ::std::result::Result::Err(::serde::de::Error::custom(\
         ::std::format!(\"unknown variant `{{}}` of `{name}`\", __other))),\n\
         }},\n\
         {CONTENT}::Map(__entries) if __entries.len() == 1 => match &__entries[0] {{\n\
         ({CONTENT}::Str(__tag), __payload) => match __tag.as_str() {{\n\
         {data_arms}\
         __other => ::std::result::Result::Err(::serde::de::Error::custom(\
         ::std::format!(\"unknown variant `{{}}` of `{name}`\", __other))),\n\
         }},\n\
         _ => ::std::result::Result::Err(::serde::de::Error::custom(\
         \"enum tag must be a string\")),\n\
         }},\n\
         __other => ::std::result::Result::Err(::serde::de::Error::unexpected(\
         \"an externally tagged enum\", __other)),\n\
         }}"
    )
}
