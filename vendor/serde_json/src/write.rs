//! JSON text rendering (compact and 2-space pretty).

use serde::content::Content;
use std::fmt::Write as _;

pub fn compact(c: &Content) -> String {
    let mut out = String::new();
    write_content(&mut out, c, None, 0);
    out
}

pub fn pretty(c: &Content) -> String {
    let mut out = String::new();
    write_content(&mut out, c, Some(2), 0);
    out
}

fn write_content(out: &mut String, c: &Content, indent: Option<usize>, depth: usize) {
    match c {
        Content::Null => out.push_str("null"),
        Content::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Content::U64(v) => {
            let _ = write!(out, "{v}");
        }
        Content::I64(v) => {
            let _ = write!(out, "{v}");
        }
        Content::F64(v) => write_f64(out, *v),
        Content::Str(s) => write_escaped(out, s),
        Content::Seq(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_content(out, item, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push(']');
        }
        Content::Map(entries) => {
            if entries.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (k, v)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_key(out, k);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_content(out, v, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push('}');
        }
    }
}

fn newline_indent(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(step) = indent {
        out.push('\n');
        for _ in 0..depth * step {
            out.push(' ');
        }
    }
}

/// Shortest round-trip formatting (`{:?}` keeps `.0` on integral floats,
/// matching upstream's ryu output); non-finite values become `null`.
fn write_f64(out: &mut String, v: f64) {
    if v.is_finite() {
        let _ = write!(out, "{v:?}");
    } else {
        out.push_str("null");
    }
}

/// JSON object keys must be strings: scalar keys are stringified the way
/// upstream serde_json does for integer-keyed maps.
fn write_key(out: &mut String, k: &Content) {
    match k {
        Content::Str(s) => write_escaped(out, s),
        Content::U64(v) => {
            let _ = write!(out, "\"{v}\"");
        }
        Content::I64(v) => {
            let _ = write!(out, "\"{v}\"");
        }
        Content::Bool(b) => {
            let _ = write!(out, "\"{b}\"");
        }
        Content::F64(v) => {
            out.push('"');
            write_f64(out, *v);
            out.push('"');
        }
        other => panic!("serde_json (vendored): unsupported map key {other:?}"),
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{08}' => out.push_str("\\b"),
            '\u{0c}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}
