//! Recursive-descent JSON parser producing [`Content`] trees.

use crate::Error;
use serde::content::Content;

/// Parse a complete JSON document (rejects trailing non-whitespace).
pub fn parse_content(s: &str) -> Result<Content, Error> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let value = p.parse_value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters after JSON value"));
    }
    Ok(value)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, msg: &str) -> Error {
        Error::new(format!("{msg} at byte {}", self.pos))
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected `{}`", b as char)))
        }
    }

    fn eat_keyword(&mut self, kw: &str) -> bool {
        if self.bytes[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            true
        } else {
            false
        }
    }

    fn parse_value(&mut self) -> Result<Content, Error> {
        match self.peek() {
            Some(b'n') => {
                if self.eat_keyword("null") {
                    Ok(Content::Null)
                } else {
                    Err(self.err("invalid literal"))
                }
            }
            Some(b't') => {
                if self.eat_keyword("true") {
                    Ok(Content::Bool(true))
                } else {
                    Err(self.err("invalid literal"))
                }
            }
            Some(b'f') => {
                if self.eat_keyword("false") {
                    Ok(Content::Bool(false))
                } else {
                    Err(self.err("invalid literal"))
                }
            }
            Some(b'"') => self.parse_string().map(Content::Str),
            Some(b'[') => self.parse_array(),
            Some(b'{') => self.parse_object(),
            Some(b'-' | b'0'..=b'9') => self.parse_number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn parse_array(&mut self) -> Result<Content, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Content::Seq(items));
        }
        loop {
            self.skip_ws();
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Content::Seq(items));
                }
                _ => return Err(self.err("expected `,` or `]` in array")),
            }
        }
    }

    fn parse_object(&mut self) -> Result<Content, Error> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Content::Map(entries));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.parse_value()?;
            entries.push((Content::Str(key), value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Content::Map(entries));
                }
                _ => return Err(self.err("expected `,` or `}` in object")),
            }
        }
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let b = self.peek().ok_or_else(|| self.err("unterminated string"))?;
            match b {
                b'"' => {
                    self.pos += 1;
                    return Ok(out);
                }
                b'\\' => {
                    self.pos += 1;
                    let esc = self.peek().ok_or_else(|| self.err("unterminated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{08}'),
                        b'f' => out.push('\u{0c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hi = self.parse_hex4()?;
                            let cp = if (0xD800..0xDC00).contains(&hi) {
                                // surrogate pair
                                if !(self.eat_keyword("\\u")) {
                                    return Err(self.err("unpaired surrogate"));
                                }
                                let lo = self.parse_hex4()?;
                                if !(0xDC00..0xE000).contains(&lo) {
                                    return Err(self.err("invalid low surrogate"));
                                }
                                0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00)
                            } else {
                                hi
                            };
                            out.push(
                                char::from_u32(cp)
                                    .ok_or_else(|| self.err("invalid unicode escape"))?,
                            );
                        }
                        _ => return Err(self.err("invalid escape character")),
                    }
                }
                _ => {
                    // Consume one UTF-8 encoded character.
                    let start = self.pos;
                    let len = utf8_len(b).ok_or_else(|| self.err("invalid UTF-8"))?;
                    if start + len > self.bytes.len() {
                        return Err(self.err("truncated UTF-8 sequence"));
                    }
                    let chunk = std::str::from_utf8(&self.bytes[start..start + len])
                        .map_err(|_| self.err("invalid UTF-8"))?;
                    out.push_str(chunk);
                    self.pos += len;
                }
            }
        }
    }

    fn parse_hex4(&mut self) -> Result<u32, Error> {
        if self.pos + 4 > self.bytes.len() {
            return Err(self.err("truncated \\u escape"));
        }
        let hex = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
            .map_err(|_| self.err("invalid \\u escape"))?;
        let v = u32::from_str_radix(hex, 16).map_err(|_| self.err("invalid \\u escape"))?;
        self.pos += 4;
        Ok(v)
    }

    fn parse_number(&mut self) -> Result<Content, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid number"))?;
        if !is_float {
            if let Ok(v) = text.parse::<u64>() {
                return Ok(Content::U64(v));
            }
            if let Ok(v) = text.parse::<i64>() {
                return Ok(Content::I64(v));
            }
            // Integral but out of 64-bit range: fall through to f64.
        }
        text.parse::<f64>()
            .map(Content::F64)
            .map_err(|_| self.err("invalid number"))
    }
}

fn utf8_len(first: u8) -> Option<usize> {
    match first {
        0x00..=0x7f => Some(1),
        0xc0..=0xdf => Some(2),
        0xe0..=0xef => Some(3),
        0xf0..=0xf7 => Some(4),
        _ => None,
    }
}
