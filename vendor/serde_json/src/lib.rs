//! Offline stand-in for [`serde_json`](https://docs.rs/serde_json).
//!
//! Renders the vendored serde's [`Content`] value tree to JSON text and
//! parses JSON text back into it. Covers the API surface this workspace
//! uses: [`to_string`], [`to_string_pretty`], [`from_str`], [`to_value`],
//! [`Value`], and the [`json!`] macro (object literals with literal keys
//! and expression values).
//!
//! Fidelity notes:
//! * floats are written with Rust's shortest round-trip `{:?}` formatting
//!   (integral floats keep their `.0`, exactly like upstream's ryu);
//! * non-finite floats render as `null` (upstream behaviour);
//! * non-string scalar map keys are stringified (upstream behaviour for
//!   integer-keyed maps).

use serde::content::Content;
use serde::de::Deserialize;
use serde::ser::Serialize;
use std::fmt;

mod read;
mod write;

pub use read::parse_content;

// ---------------------------------------------------------------------------
// Error
// ---------------------------------------------------------------------------

#[derive(Debug, Clone, PartialEq)]
pub struct Error {
    message: String,
}

impl Error {
    pub(crate) fn new(message: impl Into<String>) -> Self {
        Error {
            message: message.into(),
        }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for Error {}

impl From<serde::de::Error> for Error {
    fn from(e: serde::de::Error) -> Self {
        Error::new(e.to_string())
    }
}

pub type Result<T> = std::result::Result<T, Error>;

// ---------------------------------------------------------------------------
// Value
// ---------------------------------------------------------------------------

/// A parsed/constructed JSON value. Opaque wrapper over the serde value
/// tree; build with [`json!`] or [`to_value`], render with [`to_string`]
/// or [`to_string_pretty`].
#[derive(Debug, Clone, PartialEq)]
pub struct Value(pub(crate) Content);

impl Value {
    pub fn null() -> Value {
        Value(Content::Null)
    }

    /// Object constructor used by the [`json!`] macro.
    pub fn object(entries: Vec<(String, Value)>) -> Value {
        Value(Content::Map(
            entries
                .into_iter()
                .map(|(k, v)| (Content::Str(k), v.0))
                .collect(),
        ))
    }

    /// Array constructor used by the [`json!`] macro.
    pub fn array(items: Vec<Value>) -> Value {
        Value(Content::Seq(items.into_iter().map(|v| v.0).collect()))
    }
}

impl Serialize for Value {
    fn to_content(&self) -> Content {
        self.0.clone()
    }
}

impl Deserialize for Value {
    fn from_content(c: &Content) -> std::result::Result<Self, serde::de::Error> {
        Ok(Value(c.clone()))
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&write::compact(&self.0))
    }
}

// ---------------------------------------------------------------------------
// Entry points
// ---------------------------------------------------------------------------

pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    Ok(write::compact(&value.to_content()))
}

pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    Ok(write::pretty(&value.to_content()))
}

pub fn to_value<T: Serialize + ?Sized>(value: &T) -> Result<Value> {
    Ok(Value(value.to_content()))
}

pub fn from_str<T: Deserialize>(s: &str) -> Result<T> {
    let content = read::parse_content(s)?;
    Ok(T::from_content(&content)?)
}

pub fn from_value<T: Deserialize>(value: Value) -> Result<T> {
    Ok(T::from_content(&value.0)?)
}

/// JSON literal macro. Supports the shapes this workspace writes: object
/// literals with literal keys and expression values, array literals,
/// `null`, and plain serializable expressions.
#[macro_export]
macro_rules! json {
    (null) => { $crate::Value::null() };
    ([ $($elem:expr),* $(,)? ]) => {
        $crate::Value::array(::std::vec![ $( $crate::to_value(&$elem).unwrap() ),* ])
    };
    ({ $($key:tt : $value:expr),* $(,)? }) => {
        $crate::Value::object(::std::vec![
            $( (::std::string::ToString::to_string(&$key), $crate::to_value(&$value).unwrap()) ),*
        ])
    };
    ($other:expr) => { $crate::to_value(&$other).unwrap() };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_round_trip() {
        assert_eq!(to_string(&42u64).unwrap(), "42");
        assert_eq!(to_string(&-7i32).unwrap(), "-7");
        assert_eq!(to_string(&1.5f64).unwrap(), "1.5");
        assert_eq!(to_string(&5.0f64).unwrap(), "5.0");
        assert_eq!(to_string(&true).unwrap(), "true");
        assert_eq!(to_string(&"hi").unwrap(), "\"hi\"");
        let x: f64 = from_str("5.0").unwrap();
        assert_eq!(x, 5.0);
        let y: f64 = from_str("5").unwrap();
        assert_eq!(y, 5.0);
        let n: i64 = from_str("-12").unwrap();
        assert_eq!(n, -12);
    }

    #[test]
    fn float_shortest_repr_round_trips() {
        for v in [0.1, 0.30000000000000004, 1e-12, 6.02e23, -273.15] {
            let text = to_string(&v).unwrap();
            let back: f64 = from_str(&text).unwrap();
            assert_eq!(back.to_bits(), v.to_bits(), "{v} via {text}");
        }
    }

    #[test]
    fn containers_round_trip() {
        let v = vec![(3u64, vec![1.0f64, 2.5]), (9, vec![])];
        let text = to_string(&v).unwrap();
        let back: Vec<(u64, Vec<f64>)> = from_str(&text).unwrap();
        assert_eq!(back, v);

        let opt: Option<f64> = None;
        assert_eq!(to_string(&opt).unwrap(), "null");
        let back: Option<f64> = from_str("null").unwrap();
        assert_eq!(back, None);
    }

    #[test]
    fn string_escapes() {
        let s = "line\n\"quoted\"\tend\\ \u{1F600}";
        let text = to_string(&s).unwrap();
        let back: String = from_str(&text).unwrap();
        assert_eq!(back, s);
    }

    #[test]
    fn integer_map_keys_are_stringified() {
        use std::collections::BTreeMap;
        let mut m = BTreeMap::new();
        m.insert(7u64, 1.5f64);
        let text = to_string(&m).unwrap();
        assert_eq!(text, "{\"7\":1.5}");
        let back: BTreeMap<u64, f64> = from_str(&text).unwrap();
        assert_eq!(back, m);
    }

    #[test]
    fn json_macro_objects() {
        let v = json!({
            "name": "demcom",
            "revenue": 12.5,
            "count": 3usize,
        });
        let text = to_string(&v).unwrap();
        assert_eq!(text, "{\"name\":\"demcom\",\"revenue\":12.5,\"count\":3}");
        let nested = json!({ "runs": vec![v.clone(), v] });
        assert!(to_string(&nested).unwrap().starts_with("{\"runs\":["));
    }

    #[test]
    fn pretty_output_parses_back() {
        let v = json!({ "a": 1, "b": [1.5, 2.5], "c": { "d": true } });
        let pretty = to_string_pretty(&v).unwrap();
        assert!(pretty.contains('\n'));
        let back: Value = from_str(&pretty).unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(from_str::<Value>("{unquoted: 1}").is_err());
        assert!(from_str::<Value>("[1, 2").is_err());
        assert!(from_str::<Value>("1 trailing").is_err());
        assert!(from_str::<Value>("").is_err());
    }
}
