//! Offline stand-in for [`criterion`](https://docs.rs/criterion).
//!
//! Keeps the API the workspace's benches use (`Criterion`,
//! `benchmark_group`, `bench_function`, `bench_with_input`, `sample_size`,
//! `BenchmarkId`, `criterion_group!`/`criterion_main!`) but with a simple
//! timing loop: each benchmark runs a short warm-up, then `sample_size`
//! timed samples, and prints mean/min per-iteration time. No statistics
//! machinery, plots, or saved baselines.

use std::fmt;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Target per-sample wall time; iteration counts are calibrated to it.
const SAMPLE_TARGET: Duration = Duration::from_millis(50);
const WARM_UP_TARGET: Duration = Duration::from_millis(100);

pub struct Criterion {
    _private: (),
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { _private: () }
    }
}

impl Criterion {
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("\nbenchmark group: {name}");
        BenchmarkGroup {
            _criterion: self,
            name,
            sample_size: 20,
        }
    }

    /// Configure-then-return stubs so `Criterion::default().configure(...)`
    /// chains used by generated harnesses keep compiling.
    pub fn configure_from_args(self) -> Self {
        self
    }

    pub fn final_summary(&self) {}
}

pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    pub fn measurement_time(&mut self, _dur: Duration) -> &mut Self {
        self
    }

    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let report = run_benchmark(self.sample_size, &mut f);
        println!("  {}/{}: {report}", self.name, id);
        self
    }

    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let id = id.into();
        let report = run_benchmark(self.sample_size, &mut |b| f(b, input));
        println!("  {}/{}: {report}", self.name, id);
        self
    }

    pub fn finish(self) {}
}

/// Passed to the closure; `iter` runs the routine and accumulates timing.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }
}

struct Report {
    mean: Duration,
    min: Duration,
}

impl fmt::Display for Report {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "mean {:?}/iter (min {:?}/iter)", self.mean, self.min)
    }
}

fn time_iters(f: &mut impl FnMut(&mut Bencher), iters: u64) -> Duration {
    let mut b = Bencher {
        iters,
        elapsed: Duration::ZERO,
    };
    f(&mut b);
    b.elapsed
}

fn run_benchmark(sample_size: usize, f: &mut impl FnMut(&mut Bencher)) -> Report {
    // Warm up and calibrate the per-sample iteration count.
    let mut iters: u64 = 1;
    let mut spent = Duration::ZERO;
    let mut per_iter = Duration::from_nanos(1);
    while spent < WARM_UP_TARGET {
        let t = time_iters(f, iters);
        spent += t;
        per_iter = (t / u32::try_from(iters).unwrap_or(u32::MAX)).max(Duration::from_nanos(1));
        if t < SAMPLE_TARGET / 2 {
            iters = iters.saturating_mul(2);
        }
    }
    let per_sample =
        (SAMPLE_TARGET.as_nanos() / per_iter.as_nanos().max(1)).clamp(1, 1_000_000) as u64;

    let mut total = Duration::ZERO;
    let mut min = Duration::MAX;
    let mut total_iters: u64 = 0;
    for _ in 0..sample_size {
        let t = time_iters(f, per_sample);
        total += t;
        total_iters += per_sample;
        min = min.min(t / u32::try_from(per_sample).unwrap_or(u32::MAX));
    }
    Report {
        mean: total / u32::try_from(total_iters.max(1)).unwrap_or(u32::MAX),
        min,
    }
}

/// Benchmark identifier: `function_name/parameter`.
pub struct BenchmarkId {
    function: Option<String>,
    parameter: Option<String>,
}

impl BenchmarkId {
    pub fn new(function: impl Into<String>, parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            function: Some(function.into()),
            parameter: Some(parameter.to_string()),
        }
    }

    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            function: None,
            parameter: Some(parameter.to_string()),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(name: &str) -> Self {
        BenchmarkId {
            function: Some(name.to_string()),
            parameter: None,
        }
    }
}

impl From<String> for BenchmarkId {
    fn from(name: String) -> Self {
        BenchmarkId {
            function: Some(name),
            parameter: None,
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match (&self.function, &self.parameter) {
            (Some(func), Some(p)) => write!(f, "{func}/{p}"),
            (Some(func), None) => write!(f, "{func}"),
            (None, Some(p)) => write!(f, "{p}"),
            (None, None) => write!(f, "?"),
        }
    }
}

#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
