//! The value tree every type (de)serializes through.

/// A format-independent value: the greatest common divisor of JSON and the
/// Rust data model this workspace round-trips.
#[derive(Debug, Clone, PartialEq)]
pub enum Content {
    Null,
    Bool(bool),
    /// Non-negative integers (JSON numbers without sign or fraction).
    U64(u64),
    /// Negative integers.
    I64(i64),
    F64(f64),
    Str(String),
    Seq(Vec<Content>),
    /// Key/value pairs in insertion order. Keys are arbitrary content;
    /// JSON rendering stringifies scalar keys the way serde_json does for
    /// integer-keyed maps.
    Map(Vec<(Content, Content)>),
}

impl Content {
    /// Map lookup by string key.
    pub fn find<'a>(map: &'a [(Content, Content)], key: &str) -> Option<&'a Content> {
        map.iter()
            .find(|(k, _)| matches!(k, Content::Str(s) if s == key))
            .map(|(_, v)| v)
    }

    /// Interpret as f64 when numeric.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Content::U64(v) => Some(*v as f64),
            Content::I64(v) => Some(*v as f64),
            Content::F64(v) => Some(*v),
            _ => None,
        }
    }
}

/// Free-function form of [`Content::find`] (the derive macro calls this).
pub fn find<'a>(map: &'a [(Content, Content)], key: &str) -> Option<&'a Content> {
    Content::find(map, key)
}
