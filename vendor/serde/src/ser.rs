//! Serialization: Rust values → [`Content`] trees.

use std::collections::{BTreeMap, HashMap};

use crate::content::Content;

/// Conversion into the [`Content`] value tree.
pub trait Serialize {
    fn to_content(&self) -> Content;
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_content(&self) -> Content {
        (**self).to_content()
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn to_content(&self) -> Content {
        (**self).to_content()
    }
}

macro_rules! impl_unsigned {
    ($($ty:ty),*) => {$(
        impl Serialize for $ty {
            fn to_content(&self) -> Content {
                Content::U64(*self as u64)
            }
        }
    )*};
}
impl_unsigned!(u8, u16, u32, u64, usize);

macro_rules! impl_signed {
    ($($ty:ty),*) => {$(
        impl Serialize for $ty {
            fn to_content(&self) -> Content {
                let v = *self as i64;
                if v >= 0 {
                    Content::U64(v as u64)
                } else {
                    Content::I64(v)
                }
            }
        }
    )*};
}
impl_signed!(i8, i16, i32, i64, isize);

impl Serialize for f64 {
    fn to_content(&self) -> Content {
        Content::F64(*self)
    }
}

impl Serialize for f32 {
    fn to_content(&self) -> Content {
        Content::F64(*self as f64)
    }
}

impl Serialize for bool {
    fn to_content(&self) -> Content {
        Content::Bool(*self)
    }
}

impl Serialize for str {
    fn to_content(&self) -> Content {
        Content::Str(self.to_string())
    }
}

impl Serialize for String {
    fn to_content(&self) -> Content {
        Content::Str(self.clone())
    }
}

impl Serialize for char {
    fn to_content(&self) -> Content {
        Content::Str(self.to_string())
    }
}

impl Serialize for () {
    fn to_content(&self) -> Content {
        Content::Null
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_content(&self) -> Content {
        match self {
            Some(v) => v.to_content(),
            None => Content::Null,
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_content(&self) -> Content {
        Content::Seq(self.iter().map(Serialize::to_content).collect())
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_content(&self) -> Content {
        Content::Seq(self.iter().map(Serialize::to_content).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_content(&self) -> Content {
        Content::Seq(self.iter().map(Serialize::to_content).collect())
    }
}

impl<K: Serialize, V: Serialize, S> Serialize for HashMap<K, V, S> {
    fn to_content(&self) -> Content {
        // Deterministic output: sort by the rendered key.
        let mut entries: Vec<(Content, Content)> = self
            .iter()
            .map(|(k, v)| (k.to_content(), v.to_content()))
            .collect();
        entries.sort_by(|a, b| content_key_ord(&a.0).cmp(&content_key_ord(&b.0)));
        Content::Map(entries)
    }
}

impl<K: Serialize, V: Serialize> Serialize for BTreeMap<K, V> {
    fn to_content(&self) -> Content {
        Content::Map(
            self.iter()
                .map(|(k, v)| (k.to_content(), v.to_content()))
                .collect(),
        )
    }
}

fn content_key_ord(c: &Content) -> String {
    match c {
        Content::Str(s) => s.clone(),
        Content::U64(v) => format!("{v:020}"),
        Content::I64(v) => format!("{v}"),
        Content::F64(v) => format!("{v}"),
        other => format!("{other:?}"),
    }
}

macro_rules! impl_tuple {
    ($(($($name:ident . $idx:tt),+))*) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn to_content(&self) -> Content {
                Content::Seq(vec![$(self.$idx.to_content()),+])
            }
        }
    )*};
}

impl_tuple! {
    (A.0)
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
    (A.0, B.1, C.2, D.3, E.4)
    (A.0, B.1, C.2, D.3, E.4, F.5)
}
