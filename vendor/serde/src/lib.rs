//! Offline stand-in for the [`serde`](https://serde.rs) crate.
//!
//! The registry is unreachable in this build environment, so the workspace
//! vendors a minimal serialization framework with the same *surface* as
//! serde — `Serialize`/`Deserialize` traits plus `#[derive(Serialize,
//! Deserialize)]` macros — built on a concrete value tree ([`content::
//! Content`]) instead of serde's visitor architecture. `serde_json` (also
//! vendored) renders that tree to JSON and parses it back.
//!
//! Supported shapes (everything this workspace uses):
//!
//! * structs with named fields, tuple structs (newtype flattening), unit
//!   structs;
//! * enums with unit, tuple, and struct variants (externally tagged, like
//!   serde's default representation);
//! * `#[serde(default)]`, `#[serde(default = "path")]`, and
//!   `#[serde(skip_serializing_if = "path")]` field attributes;
//! * the std types used here: integers, floats, `bool`, `String`,
//!   `Option`, `Vec`, slices, arrays, tuples, `HashMap`/`BTreeMap`
//!   (scalar keys become JSON object keys, as upstream serde_json does).

pub mod content;
pub mod de;
pub mod ser;

pub use content::Content;
pub use de::{Deserialize, Error};
pub use ser::Serialize;

// The derive macros, re-exported so `use serde::{Serialize, Deserialize}`
// brings in both the traits and the macros, exactly as upstream.
pub use serde_derive::{Deserialize, Serialize};
