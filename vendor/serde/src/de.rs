//! Deserialization: [`Content`] trees → Rust values.

use std::collections::{BTreeMap, HashMap};
use std::fmt;
use std::hash::{BuildHasher, Hash};

use crate::content::Content;

/// Deserialization error: a plain message (path context is appended as the
/// error bubbles up through containers).
#[derive(Debug, Clone, PartialEq)]
pub struct Error {
    message: String,
}

impl Error {
    pub fn custom(msg: impl fmt::Display) -> Self {
        Error {
            message: msg.to_string(),
        }
    }

    pub fn missing_field(field: &str) -> Self {
        Error {
            message: format!("missing field `{field}`"),
        }
    }

    pub fn unexpected(expected: &str, got: &Content) -> Self {
        let kind = match got {
            Content::Null => "null",
            Content::Bool(_) => "a boolean",
            Content::U64(_) | Content::I64(_) => "an integer",
            Content::F64(_) => "a float",
            Content::Str(_) => "a string",
            Content::Seq(_) => "a sequence",
            Content::Map(_) => "a map",
        };
        Error {
            message: format!("expected {expected}, found {kind}"),
        }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for Error {}

/// Conversion out of the [`Content`] value tree.
pub trait Deserialize: Sized {
    fn from_content(c: &Content) -> Result<Self, Error>;

    /// What a missing struct field deserializes to. `Option` yields
    /// `None`; everything else errors (match upstream: absent fields are
    /// only legal when optional or defaulted).
    fn when_missing(field: &str) -> Result<Self, Error> {
        Err(Error::missing_field(field))
    }
}

/// Inference-friendly helper used by the derive macro for absent fields.
pub fn when_missing<T: Deserialize>(field: &str) -> Result<T, Error> {
    T::when_missing(field)
}

macro_rules! impl_int {
    ($($ty:ty),*) => {$(
        impl Deserialize for $ty {
            fn from_content(c: &Content) -> Result<Self, Error> {
                match c {
                    Content::U64(v) => <$ty>::try_from(*v)
                        .map_err(|_| Error::custom(format!("{v} out of range for {}", stringify!($ty)))),
                    Content::I64(v) => <$ty>::try_from(*v)
                        .map_err(|_| Error::custom(format!("{v} out of range for {}", stringify!($ty)))),
                    Content::F64(v) if v.fract() == 0.0 => Ok(*v as $ty),
                    // Integer-keyed maps arrive from JSON with string keys.
                    Content::Str(s) => s.parse::<$ty>()
                        .map_err(|_| Error::custom(format!("cannot parse {s:?} as {}", stringify!($ty)))),
                    other => Err(Error::unexpected("an integer", other)),
                }
            }
        }
    )*};
}
impl_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_float {
    ($($ty:ty),*) => {$(
        impl Deserialize for $ty {
            fn from_content(c: &Content) -> Result<Self, Error> {
                match c {
                    Content::F64(v) => Ok(*v as $ty),
                    Content::U64(v) => Ok(*v as $ty),
                    Content::I64(v) => Ok(*v as $ty),
                    Content::Str(s) => s.parse::<$ty>()
                        .map_err(|_| Error::custom(format!("cannot parse {s:?} as {}", stringify!($ty)))),
                    other => Err(Error::unexpected("a number", other)),
                }
            }
        }
    )*};
}
impl_float!(f32, f64);

impl Deserialize for bool {
    fn from_content(c: &Content) -> Result<Self, Error> {
        match c {
            Content::Bool(b) => Ok(*b),
            other => Err(Error::unexpected("a boolean", other)),
        }
    }
}

impl Deserialize for String {
    fn from_content(c: &Content) -> Result<Self, Error> {
        match c {
            Content::Str(s) => Ok(s.clone()),
            other => Err(Error::unexpected("a string", other)),
        }
    }
}

impl Deserialize for char {
    fn from_content(c: &Content) -> Result<Self, Error> {
        match c {
            Content::Str(s) if s.chars().count() == 1 => Ok(s.chars().next().unwrap()),
            other => Err(Error::unexpected("a single-character string", other)),
        }
    }
}

impl Deserialize for () {
    fn from_content(c: &Content) -> Result<Self, Error> {
        match c {
            Content::Null => Ok(()),
            other => Err(Error::unexpected("null", other)),
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_content(c: &Content) -> Result<Self, Error> {
        match c {
            Content::Null => Ok(None),
            other => T::from_content(other).map(Some),
        }
    }

    fn when_missing(_field: &str) -> Result<Self, Error> {
        Ok(None)
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn from_content(c: &Content) -> Result<Self, Error> {
        T::from_content(c).map(Box::new)
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_content(c: &Content) -> Result<Self, Error> {
        match c {
            Content::Seq(items) => items.iter().map(T::from_content).collect(),
            other => Err(Error::unexpected("a sequence", other)),
        }
    }
}

impl<T: Deserialize, const N: usize> Deserialize for [T; N] {
    fn from_content(c: &Content) -> Result<Self, Error> {
        let v: Vec<T> = Vec::from_content(c)?;
        v.try_into()
            .map_err(|_| Error::custom(format!("expected an array of length {N}")))
    }
}

impl<K, V, S> Deserialize for HashMap<K, V, S>
where
    K: Deserialize + Eq + Hash,
    V: Deserialize,
    S: BuildHasher + Default,
{
    fn from_content(c: &Content) -> Result<Self, Error> {
        match c {
            Content::Map(entries) => entries
                .iter()
                .map(|(k, v)| Ok((K::from_content(k)?, V::from_content(v)?)))
                .collect(),
            other => Err(Error::unexpected("a map", other)),
        }
    }
}

impl<K: Deserialize + Ord, V: Deserialize> Deserialize for BTreeMap<K, V> {
    fn from_content(c: &Content) -> Result<Self, Error> {
        match c {
            Content::Map(entries) => entries
                .iter()
                .map(|(k, v)| Ok((K::from_content(k)?, V::from_content(v)?)))
                .collect(),
            other => Err(Error::unexpected("a map", other)),
        }
    }
}

macro_rules! impl_tuple {
    ($(($len:literal: $($name:ident . $idx:tt),+))*) => {$(
        impl<$($name: Deserialize),+> Deserialize for ($($name,)+) {
            fn from_content(c: &Content) -> Result<Self, Error> {
                match c {
                    Content::Seq(items) if items.len() == $len => {
                        Ok(($($name::from_content(&items[$idx])?,)+))
                    }
                    other => Err(Error::unexpected(
                        concat!("a sequence of length ", $len), other)),
                }
            }
        }
    )*};
}

impl_tuple! {
    (1: A.0)
    (2: A.0, B.1)
    (3: A.0, B.1, C.2)
    (4: A.0, B.1, C.2, D.3)
    (5: A.0, B.1, C.2, D.3, E.4)
    (6: A.0, B.1, C.2, D.3, E.4, F.5)
}
