//! Binary wire framing, end to end: every protocol message survives the
//! length-prefixed codec unchanged, hostile bytes (truncated, oversized,
//! garbage) produce typed errors instead of panics or wedged sessions,
//! and a pipelined binary loopback run is byte-identical — canonical
//! JSON and all — to both the NDJSON run and the batch engine.

use com_bench::runner::canonical_run_json;
use com_core::{try_run_online, MatcherRegistry};
use com_datagen::{generate, synthetic, SyntheticParams};
use com_geo::Point;
use com_pricing::WorkerHistory;
use com_serve::{
    decode_msg, decode_payload, encode, encode_frame, replay_scenario, serve, ByeMsg, Client,
    ClientMsg, CounterRow, DeepStatsMsg, ErrorMsg, GaugeRow, Hello, PhaseRow, ReplayOptions,
    ServerConfig, ServerMsg, ShardRow, StatsMsg, WireFormat, WorkerMsg, FRAME_MAGIC,
    MAX_FRAME_PAYLOAD,
};
use com_sim::{
    Assignment, Instance, MatchKind, PlatformId, RequestId, RequestSpec, Timestamp, WorkerId,
    WorkerSpec, WorldConfig,
};

const FRAME_HEADER_LEN: usize = 5;

fn quick_instance() -> Instance {
    generate(&synthetic(SyntheticParams {
        n_requests: 200,
        n_workers: 60,
        ..SyntheticParams::default()
    }))
}

/// Round-trip a canonical value through text so both comparison sides use
/// the parsed representation.
fn canonical_text(value: &serde_json::Value) -> String {
    let text = serde_json::to_string(value).expect("serialise");
    let parsed: serde_json::Value = serde_json::from_str(&text).expect("round-trip");
    serde_json::to_string(&parsed).expect("serialise")
}

fn request_spec() -> RequestSpec {
    RequestSpec::new(
        RequestId(7),
        PlatformId(0),
        Timestamp::from_secs(3.25),
        Point::new(1.5, -2.75),
        12.5,
    )
}

fn worker_spec() -> WorkerSpec {
    WorkerSpec::new(
        WorkerId(11),
        PlatformId(1),
        Timestamp::from_secs(2.0),
        Point::new(9.0, 4.0),
        1.75,
    )
}

fn assignment(kind: MatchKind) -> Assignment {
    Assignment {
        request: request_spec(),
        kind,
        worker: Some(WorkerId(11)),
        worker_platform: Some(PlatformId(1)),
        outer_payment: 4.125,
        was_cooperative_offer: true,
        travel_km: 0.625,
        decided_at: Timestamp::from_secs(3.25),
        decision_nanos: 48_211,
    }
}

fn stats_msg() -> StatsMsg {
    StatsMsg {
        events: u64::MAX,
        assigned: 3,
        rejected: 2,
        refused: 1,
        dropped: 0,
        now_secs: 123.456,
    }
}

/// Frame `msg`, check the header, decode it back, and require the JSON
/// encodings (the protocol's canonical representation) to be identical.
fn assert_frame_round_trip<T: serde::Serialize + serde::Deserialize + std::fmt::Debug>(msg: &T) {
    let frame = encode_frame(msg);
    assert_eq!(frame[0], FRAME_MAGIC);
    let declared = u32::from_le_bytes(frame[1..FRAME_HEADER_LEN].try_into().unwrap()) as usize;
    assert_eq!(declared, frame.len() - FRAME_HEADER_LEN);
    let back: T = decode_msg(&frame[FRAME_HEADER_LEN..]).expect("decode");
    assert_eq!(encode(&back), encode(msg), "round trip changed {msg:?}");
}

#[test]
fn every_client_message_round_trips_through_a_binary_frame() {
    let hello = ClientMsg::hello(Hello {
        matcher: "ramcom".into(),
        seed: 99,
        world: WorldConfig::city(10.0),
        platforms: vec!["Uber".into(), "Lyft".into()],
        max_value: Some(20.0),
        origin: None,
        frame: Some("binary".into()),
        fed: None,
    });
    let messages = vec![
        hello,
        ClientMsg::worker(WorkerMsg {
            spec: worker_spec(),
            history: Some(WorkerHistory::from_values(vec![1.0, 2.5, 2.5, 9.0])),
        }),
        ClientMsg::worker(WorkerMsg {
            spec: worker_spec(),
            history: None,
        }),
        ClientMsg::request(request_spec()),
        ClientMsg::tick { to: 17.5 },
        ClientMsg::stats,
        ClientMsg::stats_deep,
        ClientMsg::shutdown,
    ];
    for msg in &messages {
        assert_frame_round_trip(msg);
    }
}

#[test]
fn every_server_message_round_trips_through_a_binary_frame() {
    let mut deep = DeepStatsMsg {
        stats: stats_msg(),
        algorithm: "RamCOM".into(),
        phases: vec![PhaseRow {
            phase: "ingest".into(),
            count: 1000,
            mean_ns: 31_250.5,
            p50_ns: 29_000,
            p90_ns: 41_000,
            p99_ns: 90_000,
            max_ns: 1_000_000,
            total_ns: 31_250_500,
        }],
        counters: vec![CounterRow {
            name: "grid.cells_scanned".into(),
            value: 424_242,
        }],
        gauges: vec![GaugeRow {
            name: "ingress.queue_depth".into(),
            last: 3.0,
            max: 17.0,
        }],
        queue_depth: 3,
        queue_high_water: 17,
        busy_dropped: 0,
        oversized_rejected: 2,
        bad_envelope_rejected: 1,
        shard: Some(1),
        shards: vec![ShardRow {
            shard: 1,
            sessions: 2,
            sessions_total: 5,
            events_routed: 1234,
            queue_depth: 3,
            queue_high_water: 17,
            busy_dropped: 0,
        }],
        federation: Some(com_serve::FedStatsMsg {
            platform: 1,
            offers_sent: 9,
            offers_accepted: 7,
            offers_rejected: 1,
            offers_timed_out: 1,
            offers_retried: 1,
            stale_replies: 2,
            offers_received: 8,
            lends_granted: 8,
            lends_rejected: 0,
        }),
    };
    // An empty-table variant too: Seq(vec![]) must round-trip.
    let mut empty = deep.clone();
    empty.phases.clear();
    empty.counters.clear();
    empty.gauges.clear();
    empty.shards.clear();
    empty.shard = None;
    empty.federation = None;
    deep.stats.events = 50;

    let messages = vec![
        ServerMsg::welcome {
            algorithm: "DemCOM".into(),
            frame: Some("binary".into()),
        },
        ServerMsg::welcome {
            algorithm: "DemCOM".into(),
            frame: None,
        },
        ServerMsg::ok,
        ServerMsg::assign(assignment(MatchKind::Outer)),
        ServerMsg::reject(assignment(MatchKind::Rejected)),
        ServerMsg::timeout {
            assignment: assignment(MatchKind::Inner),
            violation: "worker busy".into(),
        },
        ServerMsg::busy,
        ServerMsg::error(ErrorMsg {
            code: "bad-frame".into(),
            detail: "unknown tag 0xff — naïve peer?".into(),
        }),
        ServerMsg::stats(stats_msg()),
        ServerMsg::stats_deep(Box::new(deep)),
        ServerMsg::stats_deep(Box::new(empty)),
        ServerMsg::bye(ByeMsg {
            algorithm: "DemCOM".into(),
            revenue: 1234.5,
            completed: 120,
            cooperative: 30,
            events: 260,
            refused: 0,
            audit_findings: vec!["serving: something odd".into()],
            canonical: serde_json::from_str(
                r#"{"nested":{"seq":[1,-2,3.5,null,true,"s"],"deep":{"k":[{"x":0}]}}}"#,
            )
            .unwrap(),
            digest: "fnv1a64:deadbeefdeadbeef".into(),
            fed: Some(com_serve::FedByeMsg {
                platform: 0,
                canonical: serde_json::from_str(r#"{"assignments":[],"total_revenue":0.0}"#)
                    .unwrap(),
                digest: "fnv1a64:0000000000000000".into(),
                ledger: com_sim::PlatformLedger::default(),
                degraded_offers: 0,
            }),
        }),
    ];
    for msg in &messages {
        assert_frame_round_trip(msg);
    }
}

/// A tiny deterministic JSON generator (xorshift64*): the `bye.canonical`
/// payload is free-form JSON, so the codec must round-trip arbitrary
/// value trees, not just the struct shapes above.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.0 = x;
        x.wrapping_mul(0x2545F4914F6CDD1D)
    }

    fn json(&mut self, depth: u32, out: &mut String) {
        match self.next() % if depth == 0 { 6 } else { 8 } {
            0 => out.push_str("null"),
            1 => out.push_str(if self.next().is_multiple_of(2) {
                "true"
            } else {
                "false"
            }),
            2 => out.push_str(&format!("{}", self.next())),
            3 => out.push_str(&format!("{}", -((self.next() % 1_000_000) as i64))),
            4 => {
                // Finite floats only: non-finite renders as JSON null.
                let f = (self.next() % 1_000_000) as f64 / 64.0;
                out.push_str(&format!("{f:?}"));
            }
            5 => out.push_str(&format!("\"s{}\"", self.next() % 1000)),
            6 => {
                out.push('[');
                for i in 0..(self.next() % 4) {
                    if i > 0 {
                        out.push(',');
                    }
                    self.json(depth - 1, out);
                }
                out.push(']');
            }
            _ => {
                out.push('{');
                for i in 0..(self.next() % 4) {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push_str(&format!("\"k{i}\":"));
                    self.json(depth - 1, out);
                }
                out.push('}');
            }
        }
    }
}

#[test]
fn random_json_trees_round_trip_through_binary_frames() {
    let mut rng = Rng(0x9E3779B97F4A7C15);
    for _ in 0..300 {
        let mut text = String::from(
            "{\"bye\":{\"algorithm\":\"x\",\"revenue\":0.5,\
             \"completed\":1,\"cooperative\":0,\"events\":1,\"refused\":0,\
             \"audit_findings\":[],\"canonical\":",
        );
        rng.json(3, &mut text);
        text.push_str("}}");
        let msg: ServerMsg = serde_json::from_str(&text).expect("generated JSON parses");
        assert_frame_round_trip(&msg);
    }
}

#[test]
fn truncated_frames_and_trailing_bytes_are_rejected() {
    let frame = encode_frame(&ClientMsg::request(request_spec()));
    let payload = &frame[FRAME_HEADER_LEN..];
    // Every proper prefix of the payload is an error, never a panic.
    for cut in 0..payload.len() {
        assert!(decode_payload(&payload[..cut]).is_err(), "cut at {cut}");
    }
    // A trailing byte after a complete value is equally corrupt.
    let mut padded = payload.to_vec();
    padded.push(0x00);
    assert!(decode_payload(&padded).is_err());
    // Unknown tags are typed errors too.
    assert!(decode_payload(&[0xFF]).is_err());
    // A structurally valid value that is not a protocol message fails at
    // the message layer, still without panicking.
    assert!(decode_msg::<ClientMsg>(&encode_frame(&ServerMsg::busy)[FRAME_HEADER_LEN..]).is_err());
}

fn open_session(addr: &str, frame: Option<&str>) -> Client {
    let mut client = Client::connect(addr).expect("connect");
    let (response, _) = client
        .rpc(&ClientMsg::hello(Hello {
            matcher: "demcom".into(),
            seed: 7,
            world: WorldConfig::city(10.0),
            platforms: vec!["A".into(), "B".into()],
            max_value: Some(20.0),
            origin: None,
            frame: frame.map(|s| s.to_string()),
            fed: None,
        }))
        .expect("hello");
    let ServerMsg::welcome {
        frame: echoed_frame,
        ..
    } = response
    else {
        panic!("expected welcome, got {response:?}");
    };
    if frame == Some("binary") {
        assert_eq!(echoed_frame.as_deref(), Some("binary"));
        client.set_format(WireFormat::Binary);
    }
    client
}

fn expect_error(client: &mut Client, code: &str) {
    match client.recv().expect("response") {
        ServerMsg::error(e) => assert_eq!(e.code, code, "detail: {}", e.detail),
        other => panic!("expected {code} error, got {other:?}"),
    }
}

#[test]
fn garbage_frame_gets_typed_error_and_session_survives() {
    let handle = serve(ServerConfig::default()).expect("bind ephemeral port");
    let mut client = open_session(&handle.addr().to_string(), Some("binary"));

    // A well-formed header whose payload is pure junk.
    let mut garbage = vec![FRAME_MAGIC];
    garbage.extend_from_slice(&4u32.to_le_bytes());
    garbage.extend_from_slice(&[0xFF, 0xFE, 0xFD, 0xFC]);
    client.send_bytes(&garbage).expect("send");
    expect_error(&mut client, "bad-frame");

    // A valid value that is not a protocol message: distinct error code.
    let busy_frame = encode_frame(&ServerMsg::busy);
    client.send_bytes(&busy_frame).expect("send");
    expect_error(&mut client, "unknown-message");

    // The session still works — in binary framing — afterwards.
    let (response, _) = client
        .rpc(&ClientMsg::worker(WorkerMsg {
            spec: worker_spec(),
            history: None,
        }))
        .expect("worker");
    assert!(matches!(response, ServerMsg::ok));
    let (response, _) = client.rpc(&ClientMsg::shutdown).expect("shutdown");
    assert!(matches!(response, ServerMsg::bye(_)));
    assert_eq!(handle.counters().protocol_errors(), 2);
    handle.shutdown();
}

#[test]
fn oversized_frame_is_rejected_discarded_and_counted() {
    let handle = serve(ServerConfig::default()).expect("bind ephemeral port");
    let mut client = open_session(&handle.addr().to_string(), Some("binary"));

    // Declare a payload one byte past the cap. The server answers with a
    // typed error as soon as it sees the header, then discards exactly
    // the declared bytes without buffering them.
    let oversized_len = MAX_FRAME_PAYLOAD + 1;
    let mut header = vec![FRAME_MAGIC];
    header.extend_from_slice(&(oversized_len as u32).to_le_bytes());
    client.send_bytes(&header).expect("send header");
    expect_error(&mut client, "oversized-frame");

    // Stream the declared payload; every byte of it must be discarded,
    // not parsed (0xFF would otherwise be an instant bad-frame).
    let filler = vec![0xFFu8; 1 << 16];
    let mut remaining = oversized_len;
    while remaining > 0 {
        let n = remaining.min(filler.len());
        client.send_bytes(&filler[..n]).expect("send filler");
        remaining -= n;
    }

    // The very next frame lands on a clean boundary and works.
    let (response, _) = client
        .rpc(&ClientMsg::worker(WorkerMsg {
            spec: worker_spec(),
            history: None,
        }))
        .expect("worker");
    assert!(matches!(response, ServerMsg::ok));

    // The rejection is visible in deep telemetry.
    let (response, _) = client.rpc(&ClientMsg::stats_deep).expect("stats_deep");
    let ServerMsg::stats_deep(deep) = response else {
        panic!("expected stats_deep, got {response:?}");
    };
    assert_eq!(deep.oversized_rejected, 1);

    let (response, _) = client.rpc(&ClientMsg::shutdown).expect("shutdown");
    assert!(matches!(response, ServerMsg::bye(_)));
    handle.shutdown();
}

#[test]
fn unknown_frame_token_downgrades_to_ndjson() {
    let handle = serve(ServerConfig::default()).expect("bind ephemeral port");
    let mut client = Client::connect(&handle.addr().to_string()).expect("connect");
    let (response, _) = client
        .rpc(&ClientMsg::hello(Hello {
            matcher: "demcom".into(),
            seed: 7,
            world: WorldConfig::city(10.0),
            platforms: vec!["A".into()],
            max_value: None,
            origin: None,
            frame: Some("carrier-pigeon".into()),
            fed: None,
        }))
        .expect("hello");
    let ServerMsg::welcome { frame, .. } = response else {
        panic!("expected welcome, got {response:?}");
    };
    // The server never echoes a token it did not accept: the client
    // stays on NDJSON and the session proceeds normally.
    assert_eq!(frame.as_deref(), Some("ndjson"));
    let (response, _) = client.rpc(&ClientMsg::shutdown).expect("shutdown");
    assert!(matches!(response, ServerMsg::bye(_)));
    handle.shutdown();
}

#[test]
fn binary_pipelined_run_is_byte_identical_to_ndjson_and_batch() {
    let instance = quick_instance();
    let handle = serve(ServerConfig::default()).expect("bind ephemeral port");
    let addr = handle.addr().to_string();

    let ndjson = replay_scenario(
        &addr,
        &instance,
        &ReplayOptions {
            matcher: "ramcom".into(),
            seed: 13,
            ..ReplayOptions::default()
        },
    )
    .expect("ndjson replay");

    let binary = replay_scenario(
        &addr,
        &instance,
        &ReplayOptions {
            matcher: "ramcom".into(),
            seed: 13,
            frame: WireFormat::Binary,
            window: 64,
            ..ReplayOptions::default()
        },
    )
    .expect("binary replay");

    // Both served runs are clean…
    for report in [&ndjson, &binary] {
        assert_eq!(report.bye.audit_findings, Vec::<String>::new());
        assert_eq!(report.busy, 0);
        assert_eq!(report.events, instance.stream.len());
    }
    if let Some(deep) = &binary.deep_stats {
        assert_eq!(deep.oversized_rejected, 0);
    }

    // …and byte-identical to each other and to the batch engine.
    let registry = MatcherRegistry::builtin();
    let mut matcher = registry.resolve("ramcom").unwrap()();
    let batch = try_run_online(&instance, matcher.as_mut(), 13);
    let batch_text = canonical_text(&canonical_run_json(&batch));
    assert_eq!(canonical_text(&ndjson.bye.canonical), batch_text);
    assert_eq!(canonical_text(&binary.bye.canonical), batch_text);
    assert_eq!(ndjson.bye.revenue, batch.total_revenue());
    assert_eq!(binary.bye.revenue, batch.total_revenue());

    assert_eq!(handle.counters().protocol_errors(), 0);
    assert_eq!(handle.counters().dropped(), 0);
    handle.shutdown();
}
