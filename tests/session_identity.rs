//! Bit-identity lock for the `MatchSession` refactor: the batch wrappers
//! (`run_online`/`try_run_online`, now thin loops over a session) and a
//! manually-fed incremental session must produce byte-identical
//! `canonical_run_json` for every builtin matcher spec — the projection
//! that captures every decision, payment, and telemetry counter while
//! excluding wall-clock fields.
//!
//! The wrappers were verified unchanged against the pre-refactor test
//! suite when the session landed; this test pins wrapper ≡ session from
//! here on, so future session changes cannot silently fork the two
//! replay paths.

use com_bench::runner::canonical_run_json;
use com_core::{run_online, try_run_online, MatchSession, MatcherRegistry, MatcherSpec, RunResult};
use com_datagen::{generate, synthetic, SyntheticParams};
use com_sim::Instance;

fn canon(run: &RunResult) -> String {
    serde_json::to_string(&canonical_run_json(run)).expect("serialise canonical run")
}

fn instance() -> Instance {
    generate(&synthetic(SyntheticParams {
        n_requests: 300,
        n_workers: 80,
        ..SyntheticParams::default()
    }))
}

#[test]
fn wrappers_and_manual_sessions_are_bit_identical_for_all_builtins() {
    let instance = instance();
    let registry = MatcherRegistry::builtin();
    for spec in MatcherSpec::all_builtin() {
        for seed in [7u64, 1234] {
            let factory = registry
                .resolve(&spec.canonical())
                .expect("builtin specs resolve");

            let mut strict_matcher = factory();
            let strict = run_online(&instance, strict_matcher.as_mut(), seed);

            let mut lenient_matcher = factory();
            let lenient = try_run_online(&instance, lenient_matcher.as_mut(), seed);

            let mut session = MatchSession::for_instance(&instance, factory(), seed);
            for event in instance.stream.iter() {
                session
                    .ingest(event)
                    .expect("generated streams are in order");
            }
            let manual = session.finish();

            let label = format!("{} seed {}", spec.canonical(), seed);
            assert_eq!(
                canon(&strict),
                canon(&lenient),
                "strict vs lenient: {label}"
            );
            assert_eq!(
                canon(&strict),
                canon(&manual),
                "wrapper vs session: {label}"
            );
            assert!(
                manual.failures.is_empty(),
                "builtin matchers never get refused: {label}"
            );
        }
    }
}

#[test]
fn live_sessions_decide_identically_without_preregistration() {
    // `MatchSession::new` registers workers at their arrival events
    // instead of up front; decisions (and therefore the canonical run)
    // must not change — only memory accounting may.
    let instance = instance();
    let registry = MatcherRegistry::builtin();
    let config = com_core::SessionConfig::from_instance(&instance);
    for spec in MatcherSpec::all_builtin() {
        let factory = registry
            .resolve(&spec.canonical())
            .expect("builtin specs resolve");
        let mut batch_matcher = factory();
        let batch = try_run_online(&instance, batch_matcher.as_mut(), 99);

        let mut session = MatchSession::new(config.clone(), factory(), 99);
        for event in instance.stream.iter() {
            session.ingest(event).expect("stream in order");
        }
        let live = session.finish();
        assert_eq!(
            canon(&batch),
            canon(&live),
            "live vs batch: {}",
            spec.canonical()
        );
    }
}
