//! The PR-3 oracle: every built-in algorithm, over both service models
//! and several seeds, must leave the always-on auditor silent — the
//! fallible engine refuses nothing (`failures` empty) and the post-run
//! re-derivation of every paper invariant ([`com::prelude::validate_run`])
//! returns no findings. This is the whole-surface soundness net: any
//! future matcher change that emits a busy worker, an out-of-range
//! pairing, or an out-of-bounds payment trips it immediately.

use com::prelude::*;

/// A Table IV-style synthetic city, optionally flipped to the one-shot
/// service model so both audit replay paths (occupancy intervals and the
/// bipartite cross-check) get exercised.
fn oracle_instance(one_shot: bool) -> Instance {
    let mut scenario = synthetic(SyntheticParams {
        n_requests: 240,
        n_workers: 60,
        ..Default::default()
    });
    if one_shot {
        scenario.service = ServiceModel::one_shot();
    }
    generate(&scenario)
}

#[test]
fn every_builtin_matcher_passes_the_auditor() {
    for one_shot in [false, true] {
        let instance = oracle_instance(one_shot);
        for spec in MatcherSpec::all_builtin() {
            for seed in [1_u64, 7, 42] {
                let mut matcher = spec.build();
                let run = try_run_online(&instance, matcher.as_mut(), seed);
                assert!(
                    run.failures.is_empty(),
                    "{spec} seed={seed} one_shot={one_shot}: engine refused {} decision(s), first: {}",
                    run.failures.len(),
                    run.failures[0].violation,
                );
                let findings = validate_run(&instance, &run);
                assert!(
                    findings.is_empty(),
                    "{spec} seed={seed} one_shot={one_shot}: auditor found {} problem(s), first: {}",
                    findings.len(),
                    findings[0],
                );
            }
        }
    }
}

/// The same oracle through the audited grid API: every cell of the
/// (all specs × seeds) sweep is clean, and the sweep records nothing to
/// the global audit recorder.
#[test]
fn audited_grid_is_clean_for_builtin_matchers() {
    // Drain anything a previous test in this binary may have recorded.
    let _ = com::core::take_findings();

    let instance = oracle_instance(false);
    let runner = SweepRunner::new(4);
    let cells = run_grid_audited(&runner, &instance, &MatcherSpec::all_builtin(), &[11, 42]);
    assert_eq!(cells.len(), MatcherSpec::all_builtin().len() * 2);
    for cell in &cells {
        assert!(
            cell.is_clean(),
            "{} seed={} not clean: result ok={}, findings={:?}",
            cell.spec,
            cell.seed,
            cell.result.is_ok(),
            cell.findings,
        );
    }

    let (total, sample) = com::core::take_findings();
    assert_eq!(total, 0, "global recorder captured: {sample:?}");
}
