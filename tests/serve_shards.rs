//! Shard-pool serving, end to end: logical sessions multiplexed over one
//! connection land on shared-nothing shard threads, and the shard count
//! is *unobservable* in the results — every builtin spec's per-session
//! canonical run JSON and finish digest are byte-identical across
//! `--shards 1`, `--shards 4`, and the pre-refactor bare
//! one-session-per-connection path, with a silent auditor throughout.
//! Mux edge cases (unknown sid, duplicate hello, interleaved sids,
//! mid-stream disconnect with sessions open on several shards) get typed
//! errors and clean drains, never wedged connections.

use std::time::{Duration, Instant};

use com_bench::runner::{canonical_run_digest, canonical_run_json};
use com_core::{try_run_online, validate_run, MatcherRegistry, MatcherSpec};
use com_datagen::{generate, synthetic, SyntheticParams};
use com_geo::Point;
use com_serve::{
    drive_multi, replay_scenario, serve, Client, ClientMsg, Hello, MultiOptions, Placement,
    ReplayOptions, ServerConfig, ServerHandle, ServerMsg, WorkerMsg,
};
use com_sim::{ArrivalEvent, Instance};

fn quick_instance() -> Instance {
    generate(&synthetic(SyntheticParams {
        n_requests: 150,
        n_workers: 50,
        ..SyntheticParams::default()
    }))
}

fn shard_server(shards: usize) -> ServerHandle {
    serve(ServerConfig {
        shards,
        ..ServerConfig::default()
    })
    .expect("bind ephemeral port")
}

/// Round-trip a canonical value through text so both comparison sides use
/// the parsed representation.
fn canonical_text(value: &serde_json::Value) -> String {
    let text = serde_json::to_string(value).expect("serialise");
    let parsed: serde_json::Value = serde_json::from_str(&text).expect("round-trip");
    serde_json::to_string(&parsed).expect("serialise")
}

fn hello_for(instance: &Instance, matcher: &str, seed: u64) -> ClientMsg {
    ClientMsg::hello(Hello {
        matcher: matcher.into(),
        seed,
        world: instance.config.clone(),
        platforms: instance.platform_names.clone(),
        max_value: instance.max_value(),
        origin: None,
        frame: None,
        fed: None,
    })
}

fn event_msg(instance: &Instance, event: &ArrivalEvent) -> ClientMsg {
    match event {
        ArrivalEvent::Worker(spec) => ClientMsg::worker(WorkerMsg {
            spec: *spec,
            history: instance.histories.get(&spec.id).cloned(),
        }),
        ArrivalEvent::Request(spec) => ClientMsg::request(*spec),
    }
}

/// One strict mux round-trip: send the enveloped message, read the next
/// frame, and require it to carry the same sid.
fn mux_rpc(client: &mut Client, sid: u64, msg: ClientMsg) -> ServerMsg {
    client.queue_for(Some(sid), msg);
    client.flush().expect("flush");
    let frame = client.recv_frame().expect("response frame");
    assert_eq!(frame.sid, Some(sid), "response addressed to wrong sid");
    frame.msg
}

/// The acceptance gate for the shard refactor: for every builtin matcher
/// spec, the per-session canonical run JSON and finish digest are
/// byte-identical across a 1-shard server, a 4-shard server, and the
/// pre-refactor bare path — all equal to the local batch engine, whose
/// run the auditor (`validate_run`) also finds sound.
#[test]
fn every_builtin_is_shard_count_invariant() {
    let instance = quick_instance();
    let registry = MatcherRegistry::builtin();
    let base_seed = 71u64;
    let sessions = 3usize;

    let one = shard_server(1);
    let four = shard_server(4);

    for spec in MatcherSpec::all_builtin() {
        let matcher = spec.canonical();

        // Local ground truth, one batch run per logical session seed.
        let mut truth = Vec::new();
        for sid in 0..sessions as u64 {
            let factory = registry.resolve(&matcher).expect("builtin resolves");
            let batch = try_run_online(&instance, factory().as_mut(), base_seed + sid);
            assert!(
                validate_run(&instance, &batch).is_empty(),
                "{matcher}: local batch run must audit clean"
            );
            truth.push((
                canonical_text(&canonical_run_json(&batch)),
                canonical_run_digest(&batch),
            ));
        }

        // The pre-refactor path: one bare session per connection.
        let bare = replay_scenario(
            &one.addr().to_string(),
            &instance,
            &ReplayOptions {
                matcher: matcher.clone(),
                seed: base_seed,
                ..ReplayOptions::default()
            },
        )
        .expect("bare replay");
        assert_eq!(bare.bye.audit_findings, Vec::<String>::new());
        assert_eq!(
            canonical_text(&bare.bye.canonical),
            truth[0].0,
            "{matcher}: bare"
        );
        assert_eq!(bare.bye.digest, truth[0].1, "{matcher}: bare digest");

        // The mux path, 3 sessions over 2 connections, on both servers.
        for (label, handle, shards) in [("1 shard", &one, 1), ("4 shards", &four, 4)] {
            let report = drive_multi(
                &handle.addr().to_string(),
                &instance,
                &MultiOptions {
                    matcher: matcher.clone(),
                    base_seed,
                    connections: 2,
                    sessions,
                    ..MultiOptions::default()
                },
            )
            .expect("mux replay");
            assert_eq!(report.busy, 0, "{matcher} on {label}: dropped messages");
            assert_eq!(report.sessions.len(), sessions);
            for outcome in &report.sessions {
                let (canonical, digest) = &truth[outcome.sid as usize];
                assert_eq!(
                    outcome.bye.audit_findings,
                    Vec::<String>::new(),
                    "{matcher} on {label}: sid {} audit",
                    outcome.sid
                );
                assert_eq!(
                    &canonical_text(&outcome.bye.canonical),
                    canonical,
                    "{matcher} on {label}: sid {} canonical run",
                    outcome.sid
                );
                assert_eq!(
                    &outcome.bye.digest, digest,
                    "{matcher} on {label}: sid {} digest",
                    outcome.sid
                );
            }
            let deep = report.deep_stats.expect("stats_deep over conn 0");
            assert_eq!(
                deep.shards.len(),
                shards,
                "{matcher} on {label}: shard rows"
            );
        }
    }
    one.shutdown();
    four.shutdown();
}

#[test]
fn message_for_unknown_sid_gets_typed_error_and_connection_survives() {
    let instance = quick_instance();
    let handle = shard_server(4);
    let mut client = Client::connect(&handle.addr().to_string()).expect("connect");

    // No hello ever happened for sid 7.
    let response = mux_rpc(&mut client, 7, ClientMsg::stats);
    let ServerMsg::error(e) = response else {
        panic!("expected error, got {response:?}");
    };
    assert_eq!(e.code, "unknown-sid");
    assert!(e.detail.contains('7'), "detail names the sid: {}", e.detail);

    // The connection is not wedged: a real session opens and closes.
    let response = mux_rpc(&mut client, 1, hello_for(&instance, "demcom", 5));
    assert!(matches!(response, ServerMsg::welcome { .. }));
    let response = mux_rpc(&mut client, 1, ClientMsg::shutdown);
    assert!(matches!(response, ServerMsg::bye(_)));
    assert_eq!(handle.counters().dropped(), 0);
    handle.shutdown();
}

#[test]
fn duplicate_hello_for_live_sid_is_refused_without_killing_the_session() {
    let instance = quick_instance();
    let handle = shard_server(4);
    let mut client = Client::connect(&handle.addr().to_string()).expect("connect");

    let response = mux_rpc(&mut client, 3, hello_for(&instance, "demcom", 5));
    assert!(matches!(response, ServerMsg::welcome { .. }));

    // A second hello for the same live sid — even with a different seed
    // and an origin that would place elsewhere — is refused by the
    // session's owning shard.
    let re_hello = Hello {
        matcher: "ramcom".into(),
        seed: 99,
        world: instance.config.clone(),
        platforms: instance.platform_names.clone(),
        max_value: instance.max_value(),
        origin: Some(Point::new(9.0, 9.0)),
        frame: None,
        fed: None,
    };
    let response = mux_rpc(&mut client, 3, ClientMsg::hello(re_hello));
    let ServerMsg::error(e) = response else {
        panic!("expected error, got {response:?}");
    };
    assert_eq!(e.code, "duplicate-hello");

    // The original session is intact and still answers.
    let response = mux_rpc(&mut client, 3, ClientMsg::stats);
    let ServerMsg::stats(stats) = response else {
        panic!("expected stats, got {response:?}");
    };
    assert_eq!(stats.events, 0);
    let response = mux_rpc(&mut client, 3, ClientMsg::shutdown);
    assert!(matches!(response, ServerMsg::bye(_)));
    assert_eq!(handle.counters().sessions_finished(), 1);
    handle.shutdown();
}

/// Many sids interleaved message-by-message on one connection: every
/// response comes back addressed to the sid that asked, and because all
/// sids replay the same stream with the same seed, every bye carries the
/// identical digest — equal to the local batch engine's.
#[test]
fn interleaved_sids_on_one_connection_stay_isolated() {
    let instance = quick_instance();
    let handle = shard_server(4);
    let mut client = Client::connect(&handle.addr().to_string()).expect("connect");
    let sids: Vec<u64> = (0..6).collect();

    for &sid in &sids {
        let response = mux_rpc(&mut client, sid, hello_for(&instance, "greedy-rt", 13));
        assert!(matches!(response, ServerMsg::welcome { .. }));
    }
    // Lockstep interleave: consecutive wire messages address different
    // sids (and so, usually, different shards).
    for event in instance.stream.iter().take(40) {
        for &sid in &sids {
            let response = mux_rpc(&mut client, sid, event_msg(&instance, event));
            assert!(
                !matches!(response, ServerMsg::error(_)),
                "sid {sid}: unexpected error {response:?}"
            );
        }
    }

    let registry = MatcherRegistry::builtin();
    let factory = registry.resolve("greedy-rt").expect("builtin resolves");
    let mut session = com_core::MatchSession::for_instance(&instance, factory(), 13);
    for event in instance.stream.iter().take(40) {
        session.ingest(event).expect("in-order stream");
    }
    let local_digest = canonical_run_digest(&session.finish());

    for &sid in &sids {
        let response = mux_rpc(&mut client, sid, ClientMsg::shutdown);
        let ServerMsg::bye(bye) = response else {
            panic!("sid {sid}: expected bye, got {response:?}");
        };
        assert_eq!(bye.audit_findings, Vec::<String>::new(), "sid {sid}");
        assert_eq!(bye.digest, local_digest, "sid {sid}: digest");
    }
    assert_eq!(handle.counters().sessions_finished(), sids.len() as u64);
    assert_eq!(handle.counters().protocol_errors(), 0);
    handle.shutdown();
}

#[test]
fn disconnect_with_sessions_open_on_several_shards_drains_them_all() {
    let instance = quick_instance();
    let handle = shard_server(4);
    let addr = handle.addr().to_string();
    {
        let mut client = Client::connect(&addr).expect("connect");
        for sid in 0..6u64 {
            let response = mux_rpc(&mut client, sid, hello_for(&instance, "demcom", sid));
            assert!(matches!(response, ServerMsg::welcome { .. }));
        }
        for event in instance.stream.iter().take(10) {
            for sid in 0..6u64 {
                let response = mux_rpc(&mut client, sid, event_msg(&instance, event));
                assert!(!matches!(response, ServerMsg::error(_)));
            }
        }
        // Drop the connection with all six sessions still open.
    }
    // Every shard finishes and audits its share of the sessions.
    let deadline = Instant::now() + Duration::from_secs(5);
    while handle.counters().sessions_finished() < 6 {
        assert!(
            Instant::now() < deadline,
            "sessions not drained after disconnect: {}",
            handle.counters().sessions_finished()
        );
        std::thread::sleep(Duration::from_millis(20));
    }
    // The server is still healthy afterwards.
    let mut client = Client::connect(&addr).expect("connect");
    let response = mux_rpc(&mut client, 0, hello_for(&instance, "demcom", 1));
    assert!(matches!(response, ServerMsg::welcome { .. }));
    let response = mux_rpc(&mut client, 0, ClientMsg::shutdown);
    assert!(matches!(response, ServerMsg::bye(_)));
    assert_eq!(handle.counters().sessions_finished(), 7);
    assert_eq!(handle.counters().dropped(), 0);
    handle.shutdown();
}

/// Grid placement is deterministic and serving-neutral: the same hello
/// origins land on the same shards every run, and results equal the
/// hash-placed ones.
#[test]
fn grid_placement_serves_identically_to_hash_placement() {
    let instance = quick_instance();
    let grid = serve(ServerConfig {
        shards: 4,
        placement: Placement::parse("grid:1.0").expect("placement token"),
        ..ServerConfig::default()
    })
    .expect("bind ephemeral port");
    let mut client = Client::connect(&grid.addr().to_string()).expect("connect");

    let mut digests = Vec::new();
    for (sid, origin) in [(0u64, Point::new(0.5, 0.5)), (1, Point::new(8.5, 8.5))] {
        let hello = Hello {
            matcher: "demcom".into(),
            seed: 17,
            world: instance.config.clone(),
            platforms: instance.platform_names.clone(),
            max_value: instance.max_value(),
            origin: Some(origin),
            frame: None,
            fed: None,
        };
        let response = mux_rpc(&mut client, sid, ClientMsg::hello(hello));
        assert!(matches!(response, ServerMsg::welcome { .. }));
    }
    for event in instance.stream.iter().take(30) {
        for sid in 0..2u64 {
            let response = mux_rpc(&mut client, sid, event_msg(&instance, event));
            assert!(!matches!(response, ServerMsg::error(_)));
        }
    }
    for sid in 0..2u64 {
        let ServerMsg::bye(bye) = mux_rpc(&mut client, sid, ClientMsg::shutdown) else {
            panic!("expected bye");
        };
        assert_eq!(bye.audit_findings, Vec::<String>::new());
        digests.push(bye.digest);
    }
    // Same seed, same events: placement cannot leak into the result.
    assert_eq!(digests[0], digests[1]);
    grid.shutdown();
}
