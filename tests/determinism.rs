//! Reproducibility: identical seeds give identical worlds, runs, and
//! reports — the property every number in EXPERIMENTS.md relies on.

use com::prelude::*;

#[test]
fn generation_is_deterministic() {
    let params = SyntheticParams {
        n_requests: 400,
        n_workers: 100,
        seed: 555,
        ..Default::default()
    };
    let a = generate(&synthetic(params));
    let b = generate(&synthetic(params));
    assert_eq!(a.stream, b.stream);
    assert_eq!(a.platform_names, b.platform_names);
    for (id, h) in &a.histories {
        assert_eq!(b.histories.get(id), Some(h));
    }
}

#[test]
fn different_seeds_differ() {
    let mut params = SyntheticParams {
        n_requests: 400,
        n_workers: 100,
        seed: 555,
        ..Default::default()
    };
    let a = generate(&synthetic(params));
    params.seed = 556;
    let b = generate(&synthetic(params));
    assert_ne!(a.stream, b.stream);
}

#[test]
fn runs_replay_identically_per_seed() {
    let inst = generate(&synthetic(SyntheticParams {
        n_requests: 500,
        n_workers: 120,
        seed: 31,
        ..Default::default()
    }));
    for make in [
        || Box::new(TotaGreedy) as Box<dyn OnlineMatcher>,
        || Box::new(DemCom::default()) as Box<dyn OnlineMatcher>,
        || Box::new(RamCom::default()) as Box<dyn OnlineMatcher>,
        || Box::new(GreedyRt::default()) as Box<dyn OnlineMatcher>,
    ] {
        let mut m1 = make();
        let mut m2 = make();
        let a = run_online(&inst, m1.as_mut(), 77);
        let b = run_online(&inst, m2.as_mut(), 77);
        assert_eq!(a.total_revenue(), b.total_revenue(), "{}", a.algorithm);
        assert_eq!(a.completed(), b.completed());
        let kinds_a: Vec<MatchKind> = a.assignments.iter().map(|x| x.kind).collect();
        let kinds_b: Vec<MatchKind> = b.assignments.iter().map(|x| x.kind).collect();
        assert_eq!(kinds_a, kinds_b);
        let pay_a: Vec<f64> = a.assignments.iter().map(|x| x.outer_payment).collect();
        let pay_b: Vec<f64> = b.assignments.iter().map(|x| x.outer_payment).collect();
        assert_eq!(pay_a, pay_b);
    }
}

#[test]
fn seeds_change_randomized_algorithms_but_not_instances() {
    let inst = generate(&synthetic(SyntheticParams {
        n_requests: 500,
        n_workers: 120,
        seed: 31,
        ..Default::default()
    }));
    // RamCOM's threshold draw differs across seeds: over several seeds we
    // should observe at least two distinct outcomes.
    let outcomes: Vec<f64> = (0..6)
        .map(|s| run_online(&inst, &mut RamCom::default(), s).total_revenue())
        .collect();
    let distinct = outcomes
        .iter()
        .map(|v| v.to_bits())
        .collect::<std::collections::HashSet<_>>()
        .len();
    assert!(
        distinct > 1,
        "RamCOM is insensitive to its seed: {outcomes:?}"
    );
    // TOTA is deterministic: identical across seeds.
    let t: Vec<f64> = (0..3)
        .map(|s| run_online(&inst, &mut TotaGreedy, s).total_revenue())
        .collect();
    assert!(t.windows(2).all(|w| w[0] == w[1]));
}

#[test]
fn offline_solvers_are_deterministic() {
    let mut config = synthetic(SyntheticParams {
        n_requests: 150,
        n_workers: 60,
        seed: 8,
        ..Default::default()
    });
    config.service = ServiceModel::one_shot();
    let inst = generate(&config);
    for mode in [
        OfflineMode::ExactBipartite,
        OfflineMode::SparseExact,
        OfflineMode::GreedySchedule,
        OfflineMode::UpperBound,
    ] {
        let a = offline_solve(&inst, mode);
        let b = offline_solve(&inst, mode);
        assert_eq!(a, b, "{mode:?} not deterministic");
    }
}
