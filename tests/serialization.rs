//! Serialisation round-trips: everything the harness persists (instances,
//! assignments, experiment configs) must survive JSON and CSV.

use com::datagen::{instance_from_csv, requests_to_csv, workers_to_csv};
use com::prelude::*;
use com::sim::InstanceData;

fn instance() -> Instance {
    generate(&synthetic(SyntheticParams {
        n_requests: 120,
        n_workers: 40,
        seed: 4242,
        ..Default::default()
    }))
}

#[test]
fn instance_json_roundtrip_preserves_runs() {
    let original = instance();
    let json = serde_json::to_string(&InstanceData::from(&original)).unwrap();
    let rebuilt: Instance = serde_json::from_str::<InstanceData>(&json).unwrap().into();

    // Identical replay behaviour, not just structural equality.
    let a = run_online(&original, &mut DemCom::default(), 9);
    let b = run_online(&rebuilt, &mut DemCom::default(), 9);
    assert_eq!(a.total_revenue(), b.total_revenue());
    assert_eq!(a.completed(), b.completed());
}

#[test]
fn instance_csv_roundtrip_preserves_runs() {
    let original = instance();
    let rebuilt = instance_from_csv(
        &workers_to_csv(&original),
        &requests_to_csv(&original),
        original.platform_names.clone(),
        original.config.clone(),
    )
    .unwrap();
    let a = run_online(&original, &mut RamCom::default(), 5);
    let b = run_online(&rebuilt, &mut RamCom::default(), 5);
    assert_eq!(a.total_revenue(), b.total_revenue());
    let kinds_a: Vec<MatchKind> = a.assignments.iter().map(|x| x.kind).collect();
    let kinds_b: Vec<MatchKind> = b.assignments.iter().map(|x| x.kind).collect();
    assert_eq!(kinds_a, kinds_b);
}

#[test]
fn assignments_serialise_to_json() {
    let run = run_online(&instance(), &mut DemCom::default(), 1);
    let json = serde_json::to_string(&run.assignments).unwrap();
    let back: Vec<Assignment> = serde_json::from_str(&json).unwrap();
    assert_eq!(back.len(), run.assignments.len());
    for (x, y) in run.assignments.iter().zip(&back) {
        assert_eq!(x.kind, y.kind);
        assert_eq!(x.worker, y.worker);
        assert_eq!(x.outer_payment, y.outer_payment);
        assert_eq!(x.request.id, y.request.id);
    }
}

#[test]
fn scenario_config_json_roundtrip() {
    let config = chengdu_oct();
    let json = serde_json::to_string_pretty(&config).unwrap();
    let back: ScenarioConfig = serde_json::from_str(&json).unwrap();
    assert_eq!(back, config);
    // And the round-tripped config generates the identical instance.
    assert_eq!(generate(&back).stream, generate(&config).stream);
}

#[test]
fn finite_shift_survives_both_serialisation_paths() {
    let mut config = synthetic(SyntheticParams {
        n_requests: 20,
        n_workers: 10,
        ..Default::default()
    });
    config.service = config.service.with_shift(6.0 * 3600.0);
    let json = serde_json::to_string(&config).unwrap();
    let back: ScenarioConfig = serde_json::from_str(&json).unwrap();
    assert_eq!(back.service.shift_secs, 6.0 * 3600.0);

    let inst = generate(&config);
    let data_json = serde_json::to_string(&InstanceData::from(&inst)).unwrap();
    let rebuilt: Instance = serde_json::from_str::<InstanceData>(&data_json)
        .unwrap()
        .into();
    assert_eq!(rebuilt.config.service.shift_secs, 6.0 * 3600.0);
}

#[test]
fn unbounded_shift_is_omitted_from_json() {
    let config = synthetic(SyntheticParams::default());
    assert!(config.service.shift_secs.is_infinite());
    let json = serde_json::to_string(&config).unwrap();
    assert!(
        !json.contains("shift_secs"),
        "infinite shift must be omitted (JSON cannot express it)"
    );
    let back: ScenarioConfig = serde_json::from_str(&json).unwrap();
    assert!(back.service.shift_secs.is_infinite());
}
