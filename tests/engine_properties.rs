//! Property-based tests over the full engine: random instances, every
//! algorithm, all of Definition 2.6's invariants plus accounting
//! identities. These complement the per-module proptest suites with
//! whole-system coverage.

use std::collections::HashMap;

use com::prelude::*;
use proptest::prelude::*;

/// Build a random instance from proptest-drawn raw data.
fn build_instance(
    workers: Vec<(f64, f64, f64, f64, bool)>,
    requests: Vec<(f64, f64, f64, f64, bool)>,
    one_shot: bool,
) -> Instance {
    let side = 10.0;
    let specs: Vec<WorkerSpec> = workers
        .iter()
        .enumerate()
        .map(|(i, &(x, y, t, rad, plat))| {
            WorkerSpec::new(
                WorkerId(i as u64 + 1),
                PlatformId(plat as u16),
                Timestamp::from_secs(t * 80_000.0),
                Point::new(x * side, y * side),
                0.3 + rad * 2.0,
            )
        })
        .collect();
    let reqs: Vec<RequestSpec> = requests
        .iter()
        .enumerate()
        .map(|(i, &(x, y, t, v, plat))| {
            RequestSpec::new(
                RequestId(i as u64 + 1),
                PlatformId(plat as u16),
                Timestamp::from_secs(t * 86_000.0),
                Point::new(x * side, y * side),
                1.0 + v * 50.0,
            )
        })
        .collect();
    let histories: HashMap<WorkerId, WorkerHistory> = specs
        .iter()
        .enumerate()
        .map(|(i, w)| {
            let base = 2.0 + (i % 7) as f64 * 3.0;
            (
                w.id,
                WorkerHistory::from_values(vec![base, base + 4.0, base + 9.0]),
            )
        })
        .collect();
    let mut config = WorldConfig::city(side);
    if one_shot {
        config.service = ServiceModel::one_shot();
    }
    Instance {
        config,
        platform_names: vec!["A".into(), "B".into()],
        histories,
        stream: EventStream::from_specs(specs, reqs),
    }
}

fn entity_strategy(max: usize) -> impl Strategy<Value = Vec<(f64, f64, f64, f64, bool)>> {
    proptest::collection::vec(
        (
            0.0..1.0f64,
            0.0..1.0f64,
            0.0..1.0f64,
            0.0..1.0f64,
            proptest::bool::ANY,
        ),
        1..max,
    )
}

fn check_run(inst: &Instance, run: &RunResult) -> Result<(), TestCaseError> {
    // One decision per request, in order.
    prop_assert_eq!(run.assignments.len(), inst.request_count());

    // Accounting identities.
    let recomputed: f64 = run.assignments.iter().map(|a| a.platform_revenue()).sum();
    prop_assert!((recomputed - run.total_revenue()).abs() < 1e-6);
    let split: f64 = (0..2).map(|p| run.revenue_for(PlatformId(p))).sum();
    prop_assert!((split - run.total_revenue()).abs() < 1e-6);

    // Per-assignment invariants.
    let specs: HashMap<WorkerId, WorkerSpec> = inst.stream.workers().map(|w| (w.id, *w)).collect();
    let mut serve_counts: HashMap<WorkerId, usize> = HashMap::new();
    for a in &run.assignments {
        prop_assert!(a.platform_revenue() >= -1e-9);
        prop_assert!(a.outer_payment >= 0.0);
        prop_assert!(a.outer_payment <= a.request.value + 1e-9);
        if let Some(w) = a.worker {
            let spec = specs[&w];
            prop_assert!(spec.arrival <= a.request.arrival);
            match a.kind {
                MatchKind::Inner => prop_assert_eq!(spec.platform, a.request.platform),
                MatchKind::Outer => prop_assert_ne!(spec.platform, a.request.platform),
                MatchKind::Rejected => unreachable!("rejections carry no worker"),
            }
            *serve_counts.entry(w).or_insert(0) += 1;
        }
    }
    // 1-by-1 in one-shot worlds.
    if !inst.config.service.reentry {
        for (w, count) in serve_counts {
            prop_assert!(count <= 1, "worker {w} served {count} times");
        }
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn prop_all_algorithms_respect_invariants(
        workers in entity_strategy(16),
        requests in entity_strategy(40),
        one_shot in proptest::bool::ANY,
        seed in 0u64..1000,
    ) {
        let inst = build_instance(workers, requests, one_shot);
        for mut matcher in [
            Box::new(TotaGreedy) as Box<dyn OnlineMatcher>,
            Box::new(GreedyRt::default()),
            Box::new(DemCom::default()),
            Box::new(RamCom::default()),
            Box::new(RouteAwareCom::with_cap(0.8)),
        ] {
            let run = run_online(&inst, matcher.as_mut(), seed);
            check_run(&inst, &run)?;
        }
    }

    #[test]
    fn prop_offline_dominates_online_one_shot(
        workers in entity_strategy(12),
        requests in entity_strategy(24),
        seed in 0u64..100,
    ) {
        let inst = build_instance(workers, requests, true);
        let opt = offline_solve(&inst, OfflineMode::ExactBipartite).total_revenue;
        for mut matcher in [
            Box::new(TotaGreedy) as Box<dyn OnlineMatcher>,
            Box::new(DemCom::default()),
            Box::new(RamCom::default()),
        ] {
            let run = run_online(&inst, matcher.as_mut(), seed);
            prop_assert!(
                run.total_revenue() <= opt + 1e-6,
                "{} beat the optimum: {} > {}",
                run.algorithm, run.total_revenue(), opt
            );
        }
    }

    #[test]
    fn prop_exact_offline_solvers_agree(
        workers in entity_strategy(12),
        requests in entity_strategy(24),
    ) {
        let inst = build_instance(workers, requests, true);
        let h = offline_solve(&inst, OfflineMode::ExactBipartite).total_revenue;
        let s = offline_solve(&inst, OfflineMode::SparseExact).total_revenue;
        let a = offline_solve(&inst, OfflineMode::Auction).total_revenue;
        prop_assert!((h - s).abs() < 1e-4, "hungarian {h} != ssp {s}");
        prop_assert!((h - a).abs() < 1e-4, "hungarian {h} != auction {a}");
    }

    #[test]
    fn prop_runs_are_seed_deterministic(
        workers in entity_strategy(10),
        requests in entity_strategy(20),
        seed in 0u64..100,
    ) {
        let inst = build_instance(workers, requests, false);
        let a = run_online(&inst, &mut RamCom::default(), seed);
        let b = run_online(&inst, &mut RamCom::default(), seed);
        prop_assert_eq!(a.total_revenue(), b.total_revenue());
        prop_assert_eq!(a.assignments.len(), b.assignments.len());
        for (x, y) in a.assignments.iter().zip(&b.assignments) {
            prop_assert_eq!(x.kind, y.kind);
            prop_assert_eq!(x.worker, y.worker);
            prop_assert_eq!(x.outer_payment, y.outer_payment);
        }
    }
}
