//! Observability must be free: the `com-obs` collector may never change a
//! run's decisions, and the telemetry it reports must describe the run it
//! was attached to.

use com::obs;
use com::prelude::*;

fn instance() -> Instance {
    generate(&synthetic(SyntheticParams {
        n_requests: 400,
        n_workers: 100,
        seed: 2024,
        ..Default::default()
    }))
}

fn kinds(run: &RunResult) -> Vec<MatchKind> {
    run.assignments.iter().map(|a| a.kind).collect()
}

fn payments(run: &RunResult) -> Vec<f64> {
    run.assignments.iter().map(|a| a.outer_payment).collect()
}

#[test]
fn results_are_bit_identical_with_collector_on_and_off() {
    let inst = instance();
    for make in [
        || Box::new(TotaGreedy) as Box<dyn OnlineMatcher>,
        || Box::new(DemCom::default()) as Box<dyn OnlineMatcher>,
        || Box::new(RamCom::default()) as Box<dyn OnlineMatcher>,
        || Box::new(RouteAwareCom::with_cap(1.0)) as Box<dyn OnlineMatcher>,
    ] {
        // Collector off (the default for this thread).
        let mut m = make();
        let off = run_online(&inst, m.as_mut(), 7);
        assert!(off.telemetry.is_none());

        // Collector on.
        obs::install();
        let mut m = make();
        let on = run_online(&inst, m.as_mut(), 7);
        obs::uninstall();

        assert_eq!(
            off.total_revenue().to_bits(),
            on.total_revenue().to_bits(),
            "{}: revenue changed under instrumentation",
            off.algorithm
        );
        assert_eq!(kinds(&off), kinds(&on), "{}", off.algorithm);
        assert_eq!(payments(&off), payments(&on), "{}", off.algorithm);
        // peak_memory_bytes is deliberately not compared: HashMap
        // capacities vary a few words between runs (per-instance random
        // hash state), with or without a collector installed.

        // And the instrumented run carries a meaningful report.
        let t = on.telemetry.expect("collector installed");
        assert_eq!(t.algorithm, on.algorithm);
        let decision = t.phase(obs::PHASE_DECISION).expect("decision phase");
        assert_eq!(decision.count as usize, inst.request_count());
        assert!(decision.max_ns >= decision.p50_ns);
    }
}

#[test]
fn telemetry_counters_track_the_pricing_work() {
    let inst = instance();
    obs::install();
    let run = run_online(&inst, &mut DemCom::default(), 3);
    obs::uninstall();
    let t = run.telemetry.expect("collector installed");

    // Every priced request ran Lemma 1's 48 sampling instances.
    let estimates = t.counter("mc.estimates").unwrap_or(0);
    let samples = t.counter("mc.samples").unwrap_or(0);
    assert_eq!(
        samples,
        estimates * MonteCarloParams::default().instances() as u64
    );

    // The grid answered every candidate query.
    assert!(t.counter("grid.cells_scanned").unwrap_or(0) > 0);
    // Occupancy gauges were sampled.
    assert!(t.gauge("world.idle_workers").is_some());
}

#[test]
fn trace_file_is_valid_jsonl() {
    let dir = std::env::temp_dir().join("com-obs-integration");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join(format!("trace-{}.jsonl", std::process::id()));

    let inst = generate(&synthetic(SyntheticParams {
        n_requests: 50,
        n_workers: 30,
        seed: 5,
        ..Default::default()
    }));
    obs::install_with_trace(&path).unwrap();
    let run = run_online(&inst, &mut DemCom::default(), 11);
    obs::uninstall();
    assert!(run.telemetry.is_some());

    let text = std::fs::read_to_string(&path).unwrap();
    let mut spans = 0usize;
    for line in text.lines() {
        let v: serde_json::Value = serde_json::from_str(line).expect("valid JSON per line");
        let _ = v;
        assert!(line.contains("\"type\":\"span\""));
        spans += 1;
    }
    // At least one decision span per request reached the sink.
    assert!(spans >= inst.request_count());
    let _ = std::fs::remove_file(&path);
}
