//! The PR-2 contract: the matcher registry replaces panicking name
//! lookups with `Result`s, and the sweep runner produces bit-identical
//! results for every worker-thread count.

use com::obs::RunTelemetry;
use com::prelude::*;

fn small_instance() -> Instance {
    let scenario = synthetic(SyntheticParams {
        n_requests: 120,
        n_workers: 40,
        seed: 7,
        ..Default::default()
    });
    generate(&scenario)
}

fn grid_specs() -> Vec<MatcherSpec> {
    vec![
        MatcherSpec::Tota,
        MatcherSpec::DemCom,
        MatcherSpec::RamCom,
        MatcherSpec::RouteAware { pickup_cap_km: 2.5 },
    ]
}

/// The (matcher × seed) grid replayed with 1 and 4 worker threads must
/// serialise to byte-identical canonical JSON: same assignments, same
/// revenue, same telemetry counters. Only wall-clock fields (excluded
/// from the canonical projection) may differ.
#[test]
fn parallel_grid_is_bit_identical_to_serial() {
    let instance = small_instance();
    let specs = grid_specs();
    let seeds = [11u64, 12, 13];

    let serial = run_grid(
        &SweepRunner::new(1).with_telemetry(true),
        &instance,
        &specs,
        &seeds,
    );
    let parallel = run_grid(
        &SweepRunner::new(4).with_telemetry(true),
        &instance,
        &specs,
        &seeds,
    );

    assert_eq!(serial.len(), specs.len() * seeds.len());
    assert_eq!(parallel.len(), serial.len());
    for (s, p) in serial.iter().zip(&parallel) {
        let s_json = serde_json::to_string(&canonical_run_json(s)).unwrap();
        let p_json = serde_json::to_string(&canonical_run_json(p)).unwrap();
        assert_eq!(s_json, p_json, "mismatch for {}", s.algorithm);
    }
}

/// Oversubscription (more threads than jobs, odd worker counts) changes
/// nothing either.
#[test]
fn thread_count_is_irrelevant_to_results() {
    let instance = small_instance();
    let specs = [MatcherSpec::RamCom];
    let seeds = [5u64, 6];
    let baseline: Vec<String> = run_grid(&SweepRunner::serial(), &instance, &specs, &seeds)
        .iter()
        .map(|r| serde_json::to_string(&canonical_run_json(r)).unwrap())
        .collect();
    for threads in [2, 7, 32] {
        let got: Vec<String> = run_grid(&SweepRunner::new(threads), &instance, &specs, &seeds)
            .iter()
            .map(|r| serde_json::to_string(&canonical_run_json(r)).unwrap())
            .collect();
        assert_eq!(got, baseline, "diverged at --threads {threads}");
    }
}

/// Per-thread collectors merge into one report whose counters are exact
/// sums — identical whichever thread ran which cell.
#[test]
fn merged_telemetry_counters_match_across_thread_counts() {
    let instance = small_instance();
    let specs = grid_specs();
    let seeds = [3u64, 4];
    let serial = run_grid(
        &SweepRunner::new(1).with_telemetry(true),
        &instance,
        &specs,
        &seeds,
    );
    let parallel = run_grid(
        &SweepRunner::new(4).with_telemetry(true),
        &instance,
        &specs,
        &seeds,
    );

    let counters = |runs: &[RunResult]| -> Vec<(String, u64)> {
        let merged: RunTelemetry = merged_telemetry("grid", runs).expect("telemetry collected");
        merged
            .counters
            .iter()
            .map(|c| (c.name.clone(), c.value))
            .collect()
    };
    let s = counters(&serial);
    assert!(!s.is_empty(), "expected counters in the merged report");
    assert_eq!(s, counters(&parallel));
}

/// Registry lookups are `Result`s: every built-in spec resolves (case
/// insensitively), and unknown names fail with a message listing the
/// valid templates instead of panicking.
#[test]
fn registry_resolves_known_specs_and_rejects_unknown() {
    let registry = MatcherRegistry::builtin();
    for spec in [
        "tota",
        "TOTA",
        "demcom",
        "DemCOM",
        "ramcom",
        "greedy-rt",
        "route-aware:2.5",
    ] {
        registry
            .build(spec)
            .unwrap_or_else(|e| panic!("`{spec}` should resolve: {e}"));
    }

    let msg = match registry.build("uber-dispatch") {
        Ok(_) => panic!("`uber-dispatch` should not resolve"),
        Err(e) => e.to_string(),
    };
    assert!(msg.contains("tota"), "error should list valid specs: {msg}");
    assert!(
        msg.contains("route-aware:<cap-km>"),
        "error should list the parameterised template: {msg}"
    );
}

/// `route-aware:<cap>` parsing: the cap must be a positive finite number.
#[test]
fn route_aware_spec_parses_its_cap() {
    match "route-aware:2.5".parse::<MatcherSpec>() {
        Ok(MatcherSpec::RouteAware { pickup_cap_km }) => {
            assert!((pickup_cap_km - 2.5).abs() < 1e-12)
        }
        other => panic!("expected RouteAware, got {other:?}"),
    }
    for bad in [
        "route-aware:",
        "route-aware:abc",
        "route-aware:-1",
        "route-aware:0",
    ] {
        assert!(
            bad.parse::<MatcherSpec>().is_err(),
            "`{bad}` should be rejected"
        );
    }
}

/// Factories mint a fresh matcher per call, so parallel workers never
/// share mutable algorithm state.
#[test]
fn factories_mint_fresh_matchers() {
    let registry = MatcherRegistry::builtin();
    let factory = registry.resolve("ramcom").unwrap();
    let a = factory();
    let b = factory();
    assert_eq!(a.name(), b.name());
    let pa = &*a as *const dyn OnlineMatcher as *const u8;
    let pb = &*b as *const dyn OnlineMatcher as *const u8;
    assert_ne!(pa, pb, "factory returned the same allocation twice");
}
