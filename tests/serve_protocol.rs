//! Protocol robustness: malformed lines, out-of-protocol messages,
//! out-of-order timestamps, and mid-stream disconnects must each produce
//! a structured error response or a clean audited teardown — never a
//! panic, a wedged session, or a leaked thread. Thread hygiene is
//! observable: `ServerHandle::shutdown` joins every spawned thread, so
//! each test ending in `shutdown()` would hang if a thread leaked.

use std::time::{Duration, Instant};

use com_geo::Point;
use com_serve::{
    serve, Client, ClientMsg, Hello, ServerConfig, ServerHandle, ServerMsg, WorkerMsg,
};
use com_sim::{PlatformId, RequestId, RequestSpec, Timestamp, WorkerId, WorkerSpec, WorldConfig};

fn start_server() -> ServerHandle {
    serve(ServerConfig::default()).expect("bind ephemeral port")
}

fn hello_msg() -> ClientMsg {
    ClientMsg::hello(Hello {
        matcher: "demcom".into(),
        seed: 7,
        world: WorldConfig::city(10.0),
        platforms: vec!["A".into(), "B".into()],
        max_value: Some(20.0),
        origin: None,
        frame: None,
        fed: None,
    })
}

fn open_session(addr: &str) -> Client {
    let mut client = Client::connect(addr).expect("connect");
    let (response, _) = client.rpc(&hello_msg()).expect("hello");
    assert!(matches!(response, ServerMsg::welcome { .. }));
    client
}

fn expect_error(client: &mut Client, code: &str) {
    match client.recv().expect("response") {
        ServerMsg::error(e) => assert_eq!(e.code, code, "detail: {}", e.detail),
        other => panic!("expected {code} error, got {other:?}"),
    }
}

fn worker(id: u64, at_secs: f64) -> WorkerSpec {
    WorkerSpec::new(
        WorkerId(id),
        PlatformId(0),
        Timestamp::from_secs(at_secs),
        Point::new(5.0, 5.0),
        1.0,
    )
}

#[test]
fn malformed_json_gets_structured_error_and_session_survives() {
    let handle = start_server();
    let mut client = open_session(&handle.addr().to_string());

    client.send_raw("{this is not json").expect("send");
    expect_error(&mut client, "bad-json");

    // The session is still usable afterwards.
    let msg = ClientMsg::worker(WorkerMsg {
        spec: worker(1, 1.0),
        history: None,
    });
    let (response, _) = client.rpc(&msg).expect("worker");
    assert!(matches!(response, ServerMsg::ok));

    let (response, _) = client.rpc(&ClientMsg::shutdown).expect("shutdown");
    assert!(matches!(response, ServerMsg::bye(_)));
    assert_eq!(handle.counters().protocol_errors(), 1);
    handle.shutdown();
}

#[test]
fn unknown_message_type_gets_structured_error() {
    let handle = start_server();
    let mut client = open_session(&handle.addr().to_string());

    client
        .send_raw("{\"frobnicate\": {\"x\": 1}}")
        .expect("send");
    expect_error(&mut client, "unknown-message");
    client.send_raw("42").expect("send");
    expect_error(&mut client, "unknown-message");
    handle.shutdown();
}

#[test]
fn malformed_envelopes_get_typed_error_and_are_counted() {
    let handle = start_server();
    let mut client = open_session(&handle.addr().to_string());

    // sid without msg, then a non-integer sid: both structurally broken
    // envelopes, each answered with the typed `bad-envelope` error.
    client.send_raw("{\"sid\":3}").expect("send");
    expect_error(&mut client, "bad-envelope");
    client
        .send_raw("{\"sid\":\"x\",\"msg\":\"stats\"}")
        .expect("send");
    expect_error(&mut client, "bad-envelope");

    // The session survives, and deep stats report exactly the two
    // rejected envelopes on this connection.
    let (response, _) = client.rpc(&ClientMsg::stats_deep).expect("stats_deep");
    let ServerMsg::stats_deep(deep) = response else {
        panic!("expected stats_deep, got {response:?}");
    };
    assert_eq!(deep.bad_envelope_rejected, 2);

    let (response, _) = client.rpc(&ClientMsg::shutdown).expect("shutdown");
    assert!(matches!(response, ServerMsg::bye(_)));
    assert_eq!(handle.counters().protocol_errors(), 2);
    handle.shutdown();
}

#[test]
fn events_before_hello_and_duplicate_hello_are_refused() {
    let handle = start_server();
    let mut client = Client::connect(&handle.addr().to_string()).expect("connect");

    let (response, _) = client
        .rpc(&ClientMsg::request(RequestSpec::new(
            RequestId(1),
            PlatformId(0),
            Timestamp::from_secs(1.0),
            Point::new(1.0, 1.0),
            5.0,
        )))
        .expect("request");
    let ServerMsg::error(e) = response else {
        panic!("expected error, got {response:?}");
    };
    assert_eq!(e.code, "no-session");

    let (response, _) = client.rpc(&hello_msg()).expect("hello");
    assert!(matches!(response, ServerMsg::welcome { .. }));
    let (response, _) = client.rpc(&hello_msg()).expect("second hello");
    let ServerMsg::error(e) = response else {
        panic!("expected error, got {response:?}");
    };
    assert_eq!(e.code, "duplicate-hello");
    handle.shutdown();
}

#[test]
fn unknown_matcher_is_refused_with_the_registry_message() {
    let handle = start_server();
    let mut client = Client::connect(&handle.addr().to_string()).expect("connect");
    let (response, _) = client
        .rpc(&ClientMsg::hello(Hello {
            matcher: "does-not-exist".into(),
            seed: 1,
            world: WorldConfig::city(10.0),
            platforms: vec!["A".into()],
            max_value: None,
            origin: None,
            frame: None,
            fed: None,
        }))
        .expect("hello");
    let ServerMsg::error(e) = response else {
        panic!("expected error, got {response:?}");
    };
    assert_eq!(e.code, "unknown-matcher");
    // The registry's error lists valid specs, so the client can recover.
    assert!(e.detail.contains("demcom"), "detail: {}", e.detail);
    handle.shutdown();
}

#[test]
fn out_of_order_timestamps_are_refused_without_corrupting_the_session() {
    let handle = start_server();
    let mut client = open_session(&handle.addr().to_string());

    let (response, _) = client
        .rpc(&ClientMsg::worker(WorkerMsg {
            spec: worker(1, 10.0),
            history: None,
        }))
        .expect("worker");
    assert!(matches!(response, ServerMsg::ok));

    // Clock is at t=10; an event at t=5 is a time rewind.
    let (response, _) = client
        .rpc(&ClientMsg::worker(WorkerMsg {
            spec: worker(2, 5.0),
            history: None,
        }))
        .expect("worker");
    let ServerMsg::error(e) = response else {
        panic!("expected error, got {response:?}");
    };
    assert_eq!(e.code, "constraint");
    assert!(e.detail.contains("monotone"), "detail: {}", e.detail);

    // A tick backwards is refused the same way.
    let (response, _) = client.rpc(&ClientMsg::tick { to: 1.0 }).expect("tick");
    assert!(matches!(response, ServerMsg::error(_)));

    // The session survives: in-order traffic still works and the final
    // run audits clean (the refused events never entered the log).
    let (response, _) = client
        .rpc(&ClientMsg::worker(WorkerMsg {
            spec: worker(3, 20.0),
            history: None,
        }))
        .expect("worker");
    assert!(matches!(response, ServerMsg::ok));
    let (response, _) = client.rpc(&ClientMsg::shutdown).expect("shutdown");
    let ServerMsg::bye(bye) = response else {
        panic!("expected bye, got {response:?}");
    };
    assert_eq!(bye.events, 2); // workers 1 and 3 only
    assert_eq!(bye.audit_findings, Vec::<String>::new());
    handle.shutdown();
}

#[test]
fn duplicate_worker_arrival_is_a_constraint_error() {
    let handle = start_server();
    let mut client = open_session(&handle.addr().to_string());
    let msg = ClientMsg::worker(WorkerMsg {
        spec: worker(1, 1.0),
        history: None,
    });
    let (response, _) = client.rpc(&msg).expect("worker");
    assert!(matches!(response, ServerMsg::ok));
    let (response, _) = client.rpc(&msg).expect("worker again");
    let ServerMsg::error(e) = response else {
        panic!("expected error, got {response:?}");
    };
    assert_eq!(e.code, "constraint");
    assert!(e.detail.contains("arrived twice"), "detail: {}", e.detail);
    handle.shutdown();
}

#[test]
fn mid_stream_disconnect_drains_and_audits_the_session() {
    let handle = start_server();
    let addr = handle.addr().to_string();
    {
        let mut client = open_session(&addr);
        let (response, _) = client
            .rpc(&ClientMsg::worker(WorkerMsg {
                spec: worker(1, 1.0),
                history: None,
            }))
            .expect("worker");
        assert!(matches!(response, ServerMsg::ok));
        // Drop the connection without `shutdown`.
    }
    // The server notices the EOF, finishes and audits the session, and
    // joins the connection's threads.
    let deadline = Instant::now() + Duration::from_secs(5);
    while handle.counters().sessions_finished() < 1 {
        assert!(
            Instant::now() < deadline,
            "session not drained after disconnect"
        );
        std::thread::sleep(Duration::from_millis(20));
    }
    // The server is still healthy: a fresh session works end to end.
    let mut client = open_session(&addr);
    let (response, _) = client.rpc(&ClientMsg::shutdown).expect("shutdown");
    assert!(matches!(response, ServerMsg::bye(_)));
    assert_eq!(handle.counters().sessions_finished(), 2);
    assert_eq!(handle.counters().dropped(), 0);
    handle.shutdown();
}
