//! Empirical checks of the paper's theoretical statements (Theorems 1–2
//! and the Section II/VI remarks).

use std::collections::HashMap;

use com::prelude::*;

fn ts(s: f64) -> Timestamp {
    Timestamp::from_secs(s)
}

/// The classic greedy-killer: one worker, a cheap request arrives first,
/// an expensive one second. Greedy burns the worker on the cheap request.
fn adversarial_instance(big_value: f64) -> Instance {
    let p0 = PlatformId(0);
    let workers = vec![WorkerSpec::new(
        WorkerId(1),
        p0,
        ts(0.0),
        Point::new(5.0, 5.0),
        1.0,
    )];
    let requests = vec![
        RequestSpec::new(RequestId(1), p0, ts(10.0), Point::new(5.1, 5.0), 1.0),
        RequestSpec::new(RequestId(2), p0, ts(20.0), Point::new(5.2, 5.0), big_value),
    ];
    let mut config = WorldConfig::city(10.0);
    config.service = ServiceModel::one_shot();
    Instance {
        config,
        platform_names: vec!["solo".into()],
        histories: HashMap::new(),
        stream: EventStream::from_specs(workers, requests),
    }
}

#[test]
fn theorem_1_greedy_adversarial_ratio_is_unbounded() {
    // Theorem 1: CR_A of DemCOM (= greedy when W_out = ∅) has no bound —
    // the adversarial ratio can be driven arbitrarily close to zero.
    let mut ratios = Vec::new();
    for big in [10.0, 100.0, 1000.0] {
        let inst = adversarial_instance(big);
        let opt = offline_solve(&inst, OfflineMode::ExactBipartite).total_revenue;
        assert_eq!(opt, big); // the optimum serves the expensive request
        let greedy = run_online(&inst, &mut TotaGreedy, 1).total_revenue();
        assert_eq!(greedy, 1.0); // greedy burned the worker on ¥1
        ratios.push(greedy / opt);
    }
    assert!(ratios[0] > ratios[1] && ratios[1] > ratios[2]);
    assert!(ratios[2] < 0.002, "ratio should vanish: {ratios:?}");
}

#[test]
fn ramcom_randomization_hedges_the_adversary() {
    // The whole point of the e^k threshold: with some probability the
    // cheap request is filtered out and the worker survives for the
    // expensive one, so the *expected* ratio stays bounded away from the
    // greedy collapse.
    let inst = adversarial_instance(1000.0);
    let opt = offline_solve(&inst, OfflineMode::ExactBipartite).total_revenue;
    let mut total = 0.0;
    let trials = 64;
    // No-fallback literal mode: the hedge is the rejection of the cheap
    // request (with fallback it would be served inner and the hedge
    // disappears, exactly as in plain greedy).
    for seed in 0..trials {
        let mut m = RamCom::new(RamComConfig::paper_literal());
        total += run_online(&inst, &mut m, seed).total_revenue() / opt;
    }
    let mean_ratio = total / trials as f64;
    let greedy_ratio = run_online(&inst, &mut TotaGreedy, 1).total_revenue() / opt;
    assert!(
        mean_ratio > greedy_ratio * 10.0,
        "RamCOM mean ratio {mean_ratio} should dwarf greedy's {greedy_ratio}"
    );
    // And comfortably above the proven 1/(8e) bound on this instance.
    assert!(mean_ratio > 1.0 / (8.0 * std::f64::consts::E));
}

#[test]
fn demcom_reduces_to_tota_without_outer_workers() {
    // Section II-A: TOTA is the special case W_out = ∅ of COM. On a
    // single-platform instance DemCOM must behave *identically* to the
    // greedy baseline, decision for decision.
    let mut config = synthetic(SyntheticParams {
        n_requests: 300,
        n_workers: 80,
        seed: 3030,
        ..Default::default()
    });
    // Collapse to one platform: move everything to platform 0.
    config.platforms[0].n_requests += config.platforms[1].n_requests;
    config.platforms[0].n_workers += config.platforms[1].n_workers;
    config.platforms.truncate(1);
    let inst = generate(&config);

    let tota = run_online(&inst, &mut TotaGreedy, 9);
    let dem = run_online(&inst, &mut DemCom::default(), 9);
    assert_eq!(tota.total_revenue(), dem.total_revenue());
    assert_eq!(tota.completed(), dem.completed());
    assert_eq!(dem.cooperative_count(), 0);
    let kinds_t: Vec<MatchKind> = tota.assignments.iter().map(|a| a.kind).collect();
    let kinds_d: Vec<MatchKind> = dem.assignments.iter().map(|a| a.kind).collect();
    assert_eq!(kinds_t, kinds_d);
    let workers_t: Vec<Option<WorkerId>> = tota.assignments.iter().map(|a| a.worker).collect();
    let workers_d: Vec<Option<WorkerId>> = dem.assignments.iter().map(|a| a.worker).collect();
    assert_eq!(workers_t, workers_d);
}

#[test]
fn worst_case_orders_are_rare() {
    // The Section II-B remark (after [12]): the worst arrival order has
    // probability ≈ 1/k!, so random-order performance concentrates far
    // above the adversarial bound. Measure the spread of ratios over
    // many random orders of a moderate instance.
    let mut config = synthetic(SyntheticParams {
        n_requests: 60,
        n_workers: 30,
        radius_km: 3.0,
        seed: 515,
        ..Default::default()
    });
    config.service = ServiceModel::one_shot();
    let inst = generate(&config);
    let report = competitive_ratio_random_order(
        &inst,
        &mut || Box::new(TotaGreedy) as Box<dyn OnlineMatcher>,
        64,
        2,
    );
    // The mean sits well above the observed minimum, and no sampled
    // order comes close to the pathological 1/v collapse.
    assert!(report.mean > report.min);
    assert!(
        report.min > 0.05,
        "sampled min {} suspiciously low",
        report.min
    );
    let below_half_mean = report
        .ratios
        .iter()
        .filter(|&&r| r < report.mean * 0.5)
        .count();
    assert!(
        below_half_mean * 10 <= report.ratios.len(),
        "too many near-worst-case orders: {below_half_mean}/{}",
        report.ratios.len()
    );
}

#[test]
fn ramcom_beats_its_proven_bound_on_random_instances() {
    // Theorem 2: CR ≥ 1/(8e). The proven bound is a worst-case floor;
    // every sampled random-order ratio should clear it with a wide
    // margin.
    let mut config = synthetic(SyntheticParams {
        n_requests: 60,
        n_workers: 30,
        radius_km: 3.0,
        seed: 616,
        ..Default::default()
    });
    config.service = ServiceModel::one_shot();
    let inst = generate(&config);
    let report = competitive_ratio_random_order(
        &inst,
        &mut || Box::new(RamCom::default()) as Box<dyn OnlineMatcher>,
        32,
        3,
    );
    let bound = 1.0 / (8.0 * std::f64::consts::E);
    assert!(
        report.min > bound,
        "sampled min {} at or below the 1/(8e) bound {bound}",
        report.min
    );
}
