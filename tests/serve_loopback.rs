//! End-to-end loopback test: an in-process `matchd` server on an
//! ephemeral port serves a real datagen scenario streamed by the
//! `matchload` client library, and the served run is *exactly* the batch
//! `try_run_online` run — same decisions, same payments, same canonical
//! JSON — with a silent auditor and zero backpressure drops.

use com_bench::runner::canonical_run_json;
use com_core::{try_run_online, MatcherRegistry};
use com_datagen::{generate, synthetic, SyntheticParams};
use com_serve::{replay_scenario, serve, ReplayOptions, ServerConfig, ServerMsg};
use com_sim::Instance;

fn quick_instance() -> Instance {
    generate(&synthetic(SyntheticParams {
        n_requests: 200,
        n_workers: 60,
        ..SyntheticParams::default()
    }))
}

/// Round-trip a canonical value through text so both comparison sides use
/// the parsed representation.
fn canonical_text(value: &serde_json::Value) -> String {
    let text = serde_json::to_string(value).expect("serialise");
    let parsed: serde_json::Value = serde_json::from_str(&text).expect("round-trip");
    serde_json::to_string(&parsed).expect("serialise")
}

#[test]
fn served_run_equals_batch_run_and_audits_clean() {
    let instance = quick_instance();
    let handle = serve(ServerConfig::default()).expect("bind ephemeral port");
    let addr = handle.addr().to_string();

    let options = ReplayOptions {
        matcher: "demcom".into(),
        seed: 9,
        ..ReplayOptions::default()
    };
    let report = replay_scenario(&addr, &instance, &options).expect("loopback replay");

    // The auditor is silent and nothing was dropped.
    assert_eq!(report.bye.audit_findings, Vec::<String>::new());
    assert_eq!(report.busy, 0);
    assert_eq!(handle.counters().dropped(), 0);

    // Per-request accounting is consistent end to end.
    assert_eq!(report.events, instance.stream.len());
    assert_eq!(report.assigned as u64, report.bye.completed);
    assert_eq!(report.refused as u64, report.bye.refused);
    assert!(report.request_rtt_ns.count() as usize == instance.request_count());

    // The served run IS the batch run.
    let registry = MatcherRegistry::builtin();
    let mut matcher = registry.resolve("demcom").unwrap()();
    let batch = try_run_online(&instance, matcher.as_mut(), 9);
    assert_eq!(
        canonical_text(&canonical_run_json(&batch)),
        canonical_text(&report.bye.canonical),
    );
    assert_eq!(report.bye.revenue, batch.total_revenue());

    assert_eq!(handle.counters().connections(), 1);
    assert_eq!(handle.counters().sessions_finished(), 1);
    assert_eq!(handle.counters().protocol_errors(), 0);
    // Shutdown joins every thread; returning at all is the leak check.
    handle.shutdown();
}

#[test]
fn sequential_sessions_on_one_server_are_independent() {
    let instance = quick_instance();
    let handle = serve(ServerConfig::default()).expect("bind ephemeral port");
    let addr = handle.addr().to_string();

    let mut canonicals = Vec::new();
    for _ in 0..2 {
        let options = ReplayOptions {
            matcher: "ramcom".into(),
            seed: 4242,
            ..ReplayOptions::default()
        };
        let report = replay_scenario(&addr, &instance, &options).expect("loopback replay");
        assert_eq!(report.bye.audit_findings, Vec::<String>::new());
        canonicals.push(canonical_text(&report.bye.canonical));
    }
    // Same seed, fresh session: deterministic across connections.
    assert_eq!(canonicals[0], canonicals[1]);
    assert_eq!(handle.counters().sessions_finished(), 2);
    handle.shutdown();
}

#[test]
fn stats_reports_live_counters_mid_session() {
    let instance = quick_instance();
    let handle = serve(ServerConfig::default()).expect("bind ephemeral port");
    let addr = handle.addr().to_string();

    let mut client = com_serve::Client::connect(&addr).expect("connect");
    let hello = com_serve::ClientMsg::hello(com_serve::Hello {
        matcher: "tota".into(),
        seed: 1,
        world: instance.config.clone(),
        platforms: instance.platform_names.clone(),
        max_value: instance.max_value(),
        origin: None,
        frame: None,
        fed: None,
    });
    let (response, _) = client.rpc(&hello).expect("hello");
    assert!(matches!(response, ServerMsg::welcome { .. }));

    let mut sent = 0u64;
    for event in instance.stream.iter().take(50) {
        let msg = match event {
            com_sim::ArrivalEvent::Worker(spec) => {
                com_serve::ClientMsg::worker(com_serve::WorkerMsg {
                    spec: *spec,
                    history: instance.histories.get(&spec.id).cloned(),
                })
            }
            com_sim::ArrivalEvent::Request(spec) => com_serve::ClientMsg::request(*spec),
        };
        client.rpc(&msg).expect("event");
        sent += 1;
    }
    let (response, _) = client.rpc(&com_serve::ClientMsg::stats).expect("stats");
    let ServerMsg::stats(stats) = response else {
        panic!("expected stats, got {response:?}");
    };
    assert_eq!(stats.events, sent);
    assert_eq!(stats.dropped, 0);

    let (response, _) = client
        .rpc(&com_serve::ClientMsg::shutdown)
        .expect("shutdown");
    assert!(matches!(response, ServerMsg::bye(_)));
    handle.shutdown();
}
