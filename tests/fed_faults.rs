//! Federation fault paths: whatever the peer link does — never exists,
//! never answers, drops every connection, or rejects offers outright —
//! the borrowing daemon degrades each unconfirmed outer decision to a
//! cooperative reject, finishes the session normally, and its audit
//! stays silent (a degraded run is still a valid run, Definition 2.3).

use std::io::Read;
use std::net::TcpListener;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use com_core::{try_run_online, MatcherRegistry};
use com_datagen::{generate, synthetic, SyntheticParams};
use com_fed::{drive_single, FedOptions};
use com_serve::{
    serve, Client, ClientMsg, FedHello, Hello, OfferMsg, ServerConfig, ServerMsg, WireFormat,
};
use com_sim::{Instance, MatchKind, PlatformId, RequestId, RequestSpec, Timestamp, WorkerId};

fn small_instance() -> Instance {
    generate(&synthetic(SyntheticParams {
        n_requests: 200,
        n_workers: 60,
        ..SyntheticParams::default()
    }))
}

/// The no-fault reference must outsource at least once on platform 0 —
/// otherwise no offer would ever hit the faulty link and the test is
/// vacuous. (The exact offer count under faults is NOT the reference's
/// outer count: after the first degraded decision the replica's worker
/// availability diverges, so later decisions differ too.)
fn assert_fixture_outsources(instance: &Instance, options: &FedOptions) {
    let registry = MatcherRegistry::builtin();
    let mut matcher = registry.resolve(&options.matcher).unwrap()();
    let run = try_run_online(instance, matcher.as_mut(), options.seed);
    assert!(
        run.assignments
            .iter()
            .any(|a| a.kind == MatchKind::Outer && a.request.platform == PlatformId(0)),
        "fixture never outsources on platform 0"
    );
}

/// Degradation happened, nothing was confirmed, and the finished run
/// still passes the full audit. Returns the federation counters for
/// fault-specific assertions.
fn assert_degraded_but_audit_silent(
    report: &com_fed::DaemonReport,
    instance: &Instance,
) -> com_serve::FedStatsMsg {
    assert_eq!(
        report.bye.audit_findings,
        Vec::<String>::new(),
        "degraded run must still audit silently"
    );
    // Every event still got its answer; the session finished normally.
    assert_eq!(report.bye.events as usize, instance.stream.len());
    let fed = report.bye.fed.as_ref().expect("fed half present");
    assert!(fed.degraded_offers > 0, "no offer ever degraded");
    let stats = report
        .deep_stats
        .as_ref()
        .and_then(|d| d.federation.as_ref())
        .expect("federation counters present")
        .clone();
    assert_eq!(stats.offers_accepted, 0);
    assert_eq!(fed.degraded_offers, stats.offers_sent);
    stats
}

#[test]
fn no_peer_link_degrades_every_offer_and_audits_silent() {
    let instance = small_instance();
    let options = FedOptions {
        seed: 7,
        ..FedOptions::default()
    };
    assert_fixture_outsources(&instance, &options);
    let handle = serve(ServerConfig::default()).expect("bind");
    let report = drive_single(
        &handle.addr().to_string(),
        None, // lend-only: no peer to dial
        0,
        &instance,
        &options,
    )
    .expect("drive");
    assert_degraded_but_audit_silent(&report, &instance);
    handle.shutdown();
}

#[test]
fn unresponsive_peer_times_out_mid_offer_and_audits_silent() {
    let instance = small_instance();
    let options = FedOptions {
        seed: 7,
        deadline_ms: 60,
        ..FedOptions::default()
    };
    assert_fixture_outsources(&instance, &options);

    // A peer that accepts the link and then never answers: every offer
    // must ride out its full deadline and degrade.
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind silent peer");
    let peer_addr = listener.local_addr().unwrap().to_string();
    listener.set_nonblocking(true).unwrap();
    let stop = Arc::new(AtomicBool::new(false));
    let held = {
        let stop = Arc::clone(&stop);
        std::thread::spawn(move || {
            let mut held = Vec::new();
            while !stop.load(Ordering::Relaxed) {
                match listener.accept() {
                    Ok((stream, _)) => held.push(stream),
                    Err(_) => std::thread::sleep(Duration::from_millis(5)),
                }
            }
            drop(held);
        })
    };

    let handle = serve(ServerConfig::default()).expect("bind");
    let started = Instant::now();
    let report = drive_single(
        &handle.addr().to_string(),
        Some(peer_addr),
        0,
        &instance,
        &options,
    )
    .expect("drive");
    let stats = assert_degraded_but_audit_silent(&report, &instance);
    assert_eq!(stats.offers_timed_out, stats.offers_sent);
    // Each degraded offer waited its deadline, nothing hung past it.
    assert!(started.elapsed() >= Duration::from_millis(60));

    handle.shutdown();
    stop.store(true, Ordering::Relaxed);
    held.join().unwrap();
}

#[test]
fn peer_dropping_every_connection_mid_negotiation_degrades_fast() {
    let instance = small_instance();
    let options = FedOptions {
        seed: 7,
        deadline_ms: 400,
        ..FedOptions::default()
    };
    assert_fixture_outsources(&instance, &options);

    // A peer that accepts and immediately slams the connection shut:
    // the borrower's idempotent retry reconnects once, loses the link
    // again, and degrades without waiting out the 400ms deadline.
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind flaky peer");
    let peer_addr = listener.local_addr().unwrap().to_string();
    listener.set_nonblocking(true).unwrap();
    let stop = Arc::new(AtomicBool::new(false));
    let slammer = {
        let stop = Arc::clone(&stop);
        std::thread::spawn(move || {
            while !stop.load(Ordering::Relaxed) {
                match listener.accept() {
                    Ok((mut stream, _)) => {
                        // Drain whatever partial offer arrived, then drop.
                        stream.set_read_timeout(Some(Duration::from_millis(5))).ok();
                        let mut sink = [0u8; 1024];
                        let _ = stream.read(&mut sink);
                    }
                    Err(_) => std::thread::sleep(Duration::from_millis(2)),
                }
            }
        })
    };

    let handle = serve(ServerConfig::default()).expect("bind");
    let report = drive_single(
        &handle.addr().to_string(),
        Some(peer_addr),
        0,
        &instance,
        &options,
    )
    .expect("drive");
    let stats = assert_degraded_but_audit_silent(&report, &instance);
    // Every offer burned its one idempotent retry on the second dead
    // link before degrading.
    assert_eq!(stats.offers_retried, stats.offers_sent);

    handle.shutdown();
    stop.store(true, Ordering::Relaxed);
    slammer.join().unwrap();
}

/// Lender-side typed rejects over a real wire: an offer whose deadline
/// already lapsed is refused `expired`; an offer naming a federation
/// session the daemon never saw is refused `unknown-fed-session`. Both
/// are protocol outcomes, not protocol errors.
#[test]
fn lender_rejects_expired_and_unknown_session_offers() {
    let instance = small_instance();
    let options = FedOptions {
        seed: 7,
        ..FedOptions::default()
    };
    let handle = serve(ServerConfig::default()).expect("bind");

    // A lend-only federated session owning platform 0.
    let mut lender = Client::connect(&handle.addr().to_string()).expect("connect");
    let hello = ClientMsg::hello(Hello {
        matcher: options.matcher.clone(),
        seed: options.seed,
        world: instance.config.clone(),
        platforms: instance.platform_names.clone(),
        max_value: instance.max_value(),
        frame: Some(WireFormat::Ndjson.as_str().to_string()),
        origin: None,
        fed: Some(FedHello {
            platform: 0,
            fed_sid: options.fed_sid,
            peer: None,
            deadline_ms: None,
        }),
    });
    let (response, _) = lender.rpc(&hello).expect("hello");
    assert!(matches!(response, ServerMsg::welcome { .. }));

    // A second connection plays the rival daemon's peer link.
    let mut peer = Client::connect(&handle.addr().to_string()).expect("connect peer");
    let offer = |fed_sid: u64, deadline_ms: u64| {
        ClientMsg::outsource_offer(OfferMsg {
            fed_sid,
            offer: 1,
            request: RequestSpec::new(
                RequestId(999),
                PlatformId(1),
                Timestamp::from_secs(1.0),
                com_geo::Point::new(0.0, 0.0),
                5.0,
            ),
            worker: WorkerId(1),
            worker_platform: PlatformId(0),
            payment: 2.5,
            deadline_ms,
        })
    };

    let (response, _) = peer.rpc(&offer(options.fed_sid, 0)).expect("expired offer");
    match response {
        ServerMsg::outsource_reject { code, .. } => assert_eq!(code, "expired"),
        other => panic!("expected outsource_reject, got {other:?}"),
    }

    let (response, _) = peer
        .rpc(&offer(options.fed_sid + 999, 1_000))
        .expect("unknown-session offer");
    match response {
        ServerMsg::outsource_reject { code, .. } => assert_eq!(code, "unknown-fed-session"),
        other => panic!("expected outsource_reject, got {other:?}"),
    }

    drop(peer);
    drop(lender);
    handle.shutdown();
}
