//! Full-pipeline integration: scenario generation → engine replay →
//! metrics, across all algorithms, on a realistic (if small) city-day.

use com::prelude::*;

fn instance() -> Instance {
    generate(&synthetic(SyntheticParams {
        n_requests: 800,
        n_workers: 200,
        seed: 1234,
        ..Default::default()
    }))
}

#[test]
fn all_algorithms_run_the_same_day() {
    let inst = instance();
    let mut matchers: Vec<Box<dyn OnlineMatcher>> = vec![
        Box::new(TotaGreedy),
        Box::new(GreedyRt::default()),
        Box::new(DemCom::default()),
        Box::new(RamCom::default()),
    ];
    for matcher in &mut matchers {
        let run = run_online(&inst, matcher.as_mut(), 5);
        assert_eq!(run.assignments.len(), 800, "{}", run.algorithm);
        assert!(run.total_revenue() >= 0.0);
        assert!(run.completed() <= 800);
        // Revenue only comes from completed requests.
        let recomputed: f64 = run
            .assignments
            .iter()
            .filter(|a| a.is_completed())
            .map(|a| a.platform_revenue())
            .sum();
        assert!((recomputed - run.total_revenue()).abs() < 1e-6);
    }
}

#[test]
fn com_algorithms_dominate_tota_in_revenue() {
    let inst = instance();
    let tota = run_online(&inst, &mut TotaGreedy, 5).total_revenue();
    let dem = run_online(&inst, &mut DemCom::default(), 5).total_revenue();
    let ram = run_online(&inst, &mut RamCom::default(), 5).total_revenue();
    assert!(dem >= tota, "DemCOM {dem} < TOTA {tota}");
    // RamCOM is randomized; allow a small tolerance but it must at least
    // be in TOTA's league on a borrow-friendly workload.
    assert!(ram >= tota * 0.95, "RamCOM {ram} ≪ TOTA {tota}");
}

#[test]
fn demcom_completes_at_least_tota() {
    let inst = instance();
    let tota = run_online(&inst, &mut TotaGreedy, 5);
    let dem = run_online(&inst, &mut DemCom::default(), 5);
    assert!(dem.completed() >= tota.completed());
    // Every TOTA-completed request is inner-feasible, and DemCOM tries
    // inner workers first, so its inner count cannot collapse.
    assert!(dem.cooperative_count() > 0, "no borrowing happened at all");
}

#[test]
fn outer_payments_stay_inside_the_contract() {
    let inst = instance();
    for seed in [1, 2, 3] {
        for run in [
            run_online(&inst, &mut DemCom::default(), seed),
            run_online(&inst, &mut RamCom::default(), seed),
        ] {
            for a in run
                .assignments
                .iter()
                .filter(|a| a.is_cooperative_success())
            {
                assert!(
                    a.outer_payment > 0.0 && a.outer_payment <= a.request.value + 1e-9,
                    "{}: payment {} for value {}",
                    run.algorithm,
                    a.outer_payment,
                    a.request.value
                );
                // Platform revenue for the cooperative request is the
                // complement of the payment.
                assert!((a.platform_revenue() - (a.request.value - a.outer_payment)).abs() < 1e-9);
            }
        }
    }
}

#[test]
fn acceptance_ratio_and_payment_rate_have_paper_magnitudes() {
    let inst = instance();
    let dem = run_online(&inst, &mut DemCom::default(), 5);
    let ram = run_online(&inst, &mut RamCom::default(), 5);
    // The paper reports DemCOM ≈ 0.09–0.17 acceptance at v'/v ≈ 0.70–0.77
    // and RamCOM ≈ 0.25–0.75 at ≈ 0.81–0.82. Bands here are generous —
    // the shape that matters is RamCOM > DemCOM on both metrics.
    let (dem_acc, ram_acc) = (
        dem.acceptance_ratio().expect("DemCOM made offers"),
        ram.acceptance_ratio().expect("RamCOM made offers"),
    );
    assert!(
        ram_acc > dem_acc,
        "RamCOM acceptance {ram_acc} ≤ DemCOM {dem_acc}"
    );
    // Payment rates: the paper reports RamCOM ≈ 0.82 vs DemCOM ≈ 0.70.
    // In our model DemCOM's Algorithm 2 estimate is pulled upward by
    // fully-rejected sampling instances (the `v_r + ε` term), so the two
    // rates end up statistically close — a documented deviation (see
    // EXPERIMENTS.md). Assert both sit in a sane band and near each
    // other rather than a strict ordering.
    let (dem_rate, ram_rate) = (
        dem.mean_outer_payment_rate().unwrap(),
        ram.mean_outer_payment_rate().unwrap(),
    );
    assert!((0.2..=0.95).contains(&dem_rate), "DemCOM rate {dem_rate}");
    assert!((0.2..=0.95).contains(&ram_rate), "RamCOM rate {ram_rate}");
    assert!(
        (ram_rate - dem_rate).abs() < 0.2,
        "payment rates diverged: RamCOM {ram_rate} vs DemCOM {dem_rate}"
    );
}

#[test]
fn run_result_platform_split_is_consistent() {
    let inst = instance();
    let run = run_online(&inst, &mut RamCom::default(), 5);
    let split: f64 = (0..2).map(|p| run.revenue_for(PlatformId(p))).sum();
    assert!((split - run.total_revenue()).abs() < 1e-6);
    let completed_split: usize = (0..2).map(|p| run.completed_for(PlatformId(p))).sum();
    assert_eq!(completed_split, run.completed());
}
