//! The PR-3 isolation contract: one misbehaving cell of a sweep — be it
//! a matcher that emits invalid decisions or code that outright panics —
//! yields a structured per-cell record while every other cell completes
//! bit-identically to a serial run. The companion guarantee is that the
//! auditor ([`com::prelude::validate_run`]) re-derives the paper's
//! invariants from the finished log with plain `if`s, so it flags
//! violations in release builds too (CI runs this file under
//! `cargo test --release`).

use com::prelude::*;
use rand::rngs::StdRng;

/// A deliberately faulty matcher: it latches onto the first worker it
/// ever assigns and claims that same worker for every later request —
/// occupancy (Definition 2.2), range, and platform-ownership violations
/// galore.
#[derive(Default)]
struct BusyClaimer {
    victim: Option<WorkerId>,
}

impl OnlineMatcher for BusyClaimer {
    fn name(&self) -> &'static str {
        "BusyClaimer"
    }
    fn begin(&mut self, _: &StreamInfo, _: &mut StdRng) {
        self.victim = None;
    }
    fn decide(&mut self, world: &World, request: &RequestSpec, _: &mut StdRng) -> Decision {
        if let Some(w) = self.victim {
            return Decision::Inner { worker: w };
        }
        match world.nearest_inner_coverer(request.platform, request.location) {
            Some(w) => {
                self.victim = Some(w.id);
                Decision::Inner { worker: w.id }
            }
            None => Decision::Reject {
                was_cooperative_offer: false,
            },
        }
    }
}

fn small_instance() -> Instance {
    generate(&synthetic(SyntheticParams {
        n_requests: 120,
        n_workers: 40,
        ..Default::default()
    }))
}

/// A faulty matcher fanned through the sweep runner at 4 threads: its
/// cell carries structured per-request failure records instead of
/// poisoning the sweep, and the sound cells are bit-identical to a
/// serial execution.
#[test]
fn faulty_matcher_cell_fails_structured_while_others_match_serial() {
    let instance = small_instance();
    // Job 2 runs the faulty matcher; the rest run sound registry specs.
    let jobs: Vec<usize> = (0..5).collect();
    let sound = MatcherSpec::standard();
    let run_cell = |_i: usize, job: &usize| {
        if *job == 2 {
            try_run_online(&instance, &mut BusyClaimer::default(), 42)
        } else {
            let spec = sound[*job % sound.len()];
            let mut matcher = spec.build();
            try_run_online(&instance, matcher.as_mut(), 42)
        }
    };

    let parallel: Vec<_> = SweepRunner::new(4).try_map(jobs.clone(), run_cell);
    let serial: Vec<_> = SweepRunner::serial().try_map(jobs, run_cell);

    assert_eq!(parallel.len(), 5);
    for (i, (p, s)) in parallel.iter().zip(&serial).enumerate() {
        let p = p.as_ref().expect("no cell panicked");
        let s = s.as_ref().expect("no cell panicked");
        // Bit-identical to serial, faulty cell included.
        assert_eq!(
            canonical_run_json(p),
            canonical_run_json(s),
            "cell {i} diverged between 4 threads and serial"
        );
        if i == 2 {
            // The faulty cell: a structured record per refused decision,
            // each refusal logged as a rejection, and the run completed.
            assert!(!p.failures.is_empty(), "faulty cell recorded no failures");
            assert!(p.failures.iter().all(|f| matches!(
                f.violation,
                ConstraintViolation::WorkerNotIdle { .. }
                    | ConstraintViolation::OutOfRange { .. }
                    | ConstraintViolation::ForeignWorker { .. }
            )));
            assert_eq!(p.assignments.len(), instance.request_count());
        } else {
            assert!(p.failures.is_empty(), "sound cell {i} recorded failures");
        }
    }
}

/// A cell that panics outright (not a constraint violation) is isolated
/// by `try_map`: its slot reports the panic, every other cell completes
/// bit-identically to serial.
#[test]
fn panicking_cell_is_isolated_at_four_threads() {
    let instance = small_instance();
    let jobs: Vec<usize> = (0..4).collect();
    let run_cell = |_i: usize, job: &usize| {
        if *job == 1 {
            panic!("synthetic grid-cell crash");
        }
        let spec = MatcherSpec::standard()[*job % 3];
        let mut matcher = spec.build();
        try_run_online(&instance, matcher.as_mut(), 7)
    };

    let parallel = SweepRunner::new(4).try_map(jobs.clone(), run_cell);
    let serial = SweepRunner::serial().try_map(jobs, run_cell);

    for (i, (p, s)) in parallel.iter().zip(&serial).enumerate() {
        match (p, s) {
            (Err(pp), Err(sp)) => {
                assert_eq!(i, 1);
                assert_eq!(pp.index, 1);
                assert_eq!(sp.index, 1);
                assert!(pp.message.contains("synthetic grid-cell crash"), "{pp}");
            }
            (Ok(pr), Ok(sr)) => {
                assert_ne!(i, 1);
                assert_eq!(canonical_run_json(pr), canonical_run_json(sr));
            }
            _ => panic!("cell {i}: parallel and serial disagree about the panic"),
        }
    }
}

/// The auditor catches a corrupted log with plain control flow — no
/// `debug_assert!` involved — so this test is meaningful in release
/// builds (CI's release job runs it).
#[test]
fn auditor_flags_tampered_logs_in_release_builds() {
    let instance = small_instance();
    let mut matcher = MatcherRegistry::builtin().build("demcom").unwrap();
    let mut run = try_run_online(&instance, matcher.as_mut(), 42);
    assert!(validate_run(&instance, &run).is_empty());

    // Tamper: pay an inner worker an outer payment — revenue arithmetic
    // no longer matches Definition 2.5.
    let idx = run
        .assignments
        .iter()
        .position(|a| a.kind == MatchKind::Inner)
        .expect("demcom served at least one inner request");
    run.assignments[idx].outer_payment = run.assignments[idx].request.value;

    let findings = validate_run(&instance, &run);
    assert!(
        !findings.is_empty(),
        "auditor missed an inner assignment carrying an outer payment"
    );
}
