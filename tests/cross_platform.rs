//! Cross-platform semantics: visibility rules, borrow accounting, and
//! the 1-by-1 occupancy of borrowed workers across waiting lists.

use std::collections::HashMap;

use com::prelude::*;

fn ts(s: f64) -> Timestamp {
    Timestamp::from_secs(s)
}

/// One request on platform 0 reachable only by a single worker of
/// platform 1 with an accept-anything history.
fn borrow_only_instance() -> Instance {
    let workers = vec![WorkerSpec::new(
        WorkerId(1),
        PlatformId(1),
        ts(0.0),
        Point::new(5.0, 5.0),
        1.0,
    )];
    let requests = vec![RequestSpec::new(
        RequestId(1),
        PlatformId(0),
        ts(10.0),
        Point::new(5.2, 5.0),
        10.0,
    )];
    let mut histories = HashMap::new();
    histories.insert(WorkerId(1), WorkerHistory::from_values(vec![0.1]));
    let mut config = WorldConfig::city(10.0);
    config.service = ServiceModel::one_shot();
    Instance {
        config,
        platform_names: vec!["A".into(), "B".into()],
        histories,
        stream: EventStream::from_specs(workers, requests),
    }
}

#[test]
fn tota_cannot_borrow_but_demcom_can() {
    let inst = borrow_only_instance();
    let tota = run_online(&inst, &mut TotaGreedy, 1);
    assert_eq!(tota.completed(), 0, "TOTA must not see foreign workers");

    let dem = run_online(&inst, &mut DemCom::default(), 1);
    assert_eq!(dem.completed(), 1);
    let a = &dem.assignments[0];
    assert!(a.is_cooperative_success());
    assert_eq!(a.worker, Some(WorkerId(1)));
    assert_eq!(a.worker_platform, Some(PlatformId(1)));
    // The target platform keeps v − v′ > 0; the lender's worker earns v′.
    assert!(a.platform_revenue() > 0.0);
    assert!((a.platform_revenue() + a.worker_earnings() - 10.0).abs() < 1e-9);
}

#[test]
fn borrowed_worker_leaves_every_waiting_list() {
    // Two requests, one on each platform, both reachable only by the
    // single platform-1 worker. Once borrowed by platform 0, the worker
    // must not serve platform 1's own later request (one-shot service).
    let workers = vec![WorkerSpec::new(
        WorkerId(1),
        PlatformId(1),
        ts(0.0),
        Point::new(5.0, 5.0),
        1.0,
    )];
    let requests = vec![
        RequestSpec::new(
            RequestId(1),
            PlatformId(0),
            ts(10.0),
            Point::new(5.2, 5.0),
            10.0,
        ),
        RequestSpec::new(
            RequestId(2),
            PlatformId(1),
            ts(20.0),
            Point::new(5.1, 5.0),
            8.0,
        ),
    ];
    let mut histories = HashMap::new();
    histories.insert(WorkerId(1), WorkerHistory::from_values(vec![0.1]));
    let mut config = WorldConfig::city(10.0);
    config.service = ServiceModel::one_shot();
    let inst = Instance {
        config,
        platform_names: vec!["A".into(), "B".into()],
        histories,
        stream: EventStream::from_specs(workers, requests),
    };
    let run = run_online(&inst, &mut DemCom::default(), 3);
    assert_eq!(run.completed(), 1, "the single worker serves exactly once");
    assert!(run.assignments[0].is_cooperative_success());
    assert_eq!(run.assignments[1].kind, MatchKind::Rejected);
}

#[test]
fn reentry_returns_borrowed_worker_to_its_home_platform() {
    // With re-entry, the borrowed worker finishes platform 0's job and
    // later serves its own platform's request as an inner worker.
    let workers = vec![WorkerSpec::new(
        WorkerId(1),
        PlatformId(1),
        ts(0.0),
        Point::new(5.0, 5.0),
        1.0,
    )];
    let requests = vec![
        RequestSpec::new(
            RequestId(1),
            PlatformId(0),
            ts(10.0),
            Point::new(5.2, 5.0),
            10.0,
        ),
        RequestSpec::new(
            RequestId(2),
            PlatformId(1),
            ts(10_000.0),
            Point::new(5.1, 5.0),
            8.0,
        ),
    ];
    let mut histories = HashMap::new();
    histories.insert(WorkerId(1), WorkerHistory::from_values(vec![0.1]));
    let mut config = WorldConfig::city(10.0);
    config.service = ServiceModel::taxi(30.0, 300.0);
    let inst = Instance {
        config,
        platform_names: vec!["A".into(), "B".into()],
        histories,
        stream: EventStream::from_specs(workers, requests),
    };
    let run = run_online(&inst, &mut DemCom::default(), 3);
    assert_eq!(run.completed(), 2);
    assert_eq!(run.assignments[0].kind, MatchKind::Outer);
    assert_eq!(run.assignments[1].kind, MatchKind::Inner);
    assert_eq!(run.assignments[1].worker, Some(WorkerId(1)));
}

#[test]
fn inner_workers_always_have_priority_over_closer_outer_workers() {
    let workers = vec![
        // Inner worker, 0.9 km from the request.
        WorkerSpec::new(
            WorkerId(1),
            PlatformId(0),
            ts(0.0),
            Point::new(4.1, 5.0),
            1.0,
        ),
        // Outer worker, 0.1 km away.
        WorkerSpec::new(
            WorkerId(2),
            PlatformId(1),
            ts(0.0),
            Point::new(5.1, 5.0),
            1.0,
        ),
    ];
    let requests = vec![RequestSpec::new(
        RequestId(1),
        PlatformId(0),
        ts(10.0),
        Point::new(5.0, 5.0),
        10.0,
    )];
    let mut histories = HashMap::new();
    histories.insert(WorkerId(2), WorkerHistory::from_values(vec![0.1]));
    let mut config = WorldConfig::city(10.0);
    config.service = ServiceModel::one_shot();
    let inst = Instance {
        config,
        platform_names: vec!["A".into(), "B".into()],
        histories,
        stream: EventStream::from_specs(workers, requests),
    };
    let run = run_online(&inst, &mut DemCom::default(), 1);
    assert_eq!(run.assignments[0].kind, MatchKind::Inner);
    assert_eq!(run.assignments[0].worker, Some(WorkerId(1)));
    assert_eq!(run.assignments[0].platform_revenue(), 10.0);
}

#[test]
fn three_platform_borrowing_works() {
    // A request on platform 0 with candidate outer workers on platforms
    // 1 and 2; the nearest willing one serves.
    let workers = vec![
        WorkerSpec::new(
            WorkerId(1),
            PlatformId(1),
            ts(0.0),
            Point::new(5.4, 5.0),
            1.0,
        ),
        WorkerSpec::new(
            WorkerId(2),
            PlatformId(2),
            ts(0.0),
            Point::new(5.1, 5.0),
            1.0,
        ),
    ];
    let requests = vec![RequestSpec::new(
        RequestId(1),
        PlatformId(0),
        ts(10.0),
        Point::new(5.0, 5.0),
        10.0,
    )];
    let mut histories = HashMap::new();
    histories.insert(WorkerId(1), WorkerHistory::from_values(vec![0.1]));
    histories.insert(WorkerId(2), WorkerHistory::from_values(vec![0.1]));
    let mut config = WorldConfig::city(10.0);
    config.service = ServiceModel::one_shot();
    let inst = Instance {
        config,
        platform_names: vec!["A".into(), "B".into(), "C".into()],
        histories,
        stream: EventStream::from_specs(workers, requests),
    };
    let run = run_online(&inst, &mut DemCom::default(), 1);
    assert_eq!(run.completed(), 1);
    let a = &run.assignments[0];
    assert_eq!(a.worker, Some(WorkerId(2)), "nearest outer worker serves");
    assert_eq!(a.worker_platform, Some(PlatformId(2)));
}
