//! The paper's running Example 1 (Fig. 3, Tables I–II), reproduced
//! end-to-end: 5 workers, 5 requests, the exact arrival order of
//! Table II, and the revenue arithmetic of Fig. 3(b)/(c).

use std::collections::HashMap;

use com::prelude::*;

fn ts(s: f64) -> Timestamp {
    Timestamp::from_secs(s)
}

/// Example 1 geometry: worker coverage matches the paper's Fig. 3 —
/// w1 ⊇ {r1, r2}, w2 ⊇ {r2, r3}, w3 ⊇ {r3}, w4 ⊇ {r4}, w5 ⊇ {r5};
/// w3 and w5 belong to another platform (outer workers).
fn example_1(outer_floor_w3: f64, outer_floor_w5: f64) -> Instance {
    let p0 = PlatformId(0);
    let p1 = PlatformId(1);
    let workers = vec![
        WorkerSpec::new(WorkerId(1), p0, ts(1.0), Point::new(1.0, 1.0), 1.0),
        WorkerSpec::new(WorkerId(2), p0, ts(2.0), Point::new(2.6, 1.0), 1.0),
        WorkerSpec::new(WorkerId(3), p1, ts(4.0), Point::new(3.4, 1.6), 1.0),
        WorkerSpec::new(WorkerId(4), p0, ts(7.0), Point::new(5.0, 5.0), 1.0),
        WorkerSpec::new(WorkerId(5), p1, ts(9.0), Point::new(7.0, 7.0), 1.0),
    ];
    let requests = vec![
        RequestSpec::new(RequestId(1), p0, ts(3.0), Point::new(0.8, 1.6), 4.0),
        RequestSpec::new(RequestId(2), p0, ts(5.0), Point::new(1.9, 1.0), 9.0),
        RequestSpec::new(RequestId(3), p0, ts(6.0), Point::new(3.3, 1.0), 6.0),
        RequestSpec::new(RequestId(4), p0, ts(8.0), Point::new(5.5, 5.0), 3.0),
        RequestSpec::new(RequestId(5), p0, ts(10.0), Point::new(7.5, 7.0), 4.0),
    ];
    let mut histories = HashMap::new();
    histories.insert(
        WorkerId(3),
        WorkerHistory::from_values(vec![outer_floor_w3]),
    );
    histories.insert(
        WorkerId(5),
        WorkerHistory::from_values(vec![outer_floor_w5]),
    );
    let mut config = WorldConfig::city(10.0);
    config.service = ServiceModel::one_shot();
    Instance {
        config,
        platform_names: vec!["target".into(), "lender".into()],
        histories,
        stream: EventStream::from_specs(workers, requests),
    }
}

#[test]
fn table_ii_arrival_order_is_reproduced() {
    let inst = example_1(3.0, 2.0);
    let kinds: Vec<char> = inst
        .stream
        .iter()
        .map(|e| match e {
            com::stream::ArrivalEvent::Worker(_) => 'w',
            com::stream::ArrivalEvent::Request(_) => 'r',
        })
        .collect();
    // Table II: w1 w2 r1 w3 r2 r3 w4 r4 w5 r5.
    assert_eq!(
        kinds,
        vec!['w', 'w', 'r', 'w', 'r', 'r', 'w', 'r', 'w', 'r']
    );
}

#[test]
fn tota_offline_optimum_is_18() {
    // Fig. 3(b): without cooperation the offline optimum serves 3
    // requests for 9 + 6 + 3 = 18. Strip the outer workers to model a
    // single platform.
    let inst = example_1(3.0, 2.0);
    let workers: Vec<WorkerSpec> = inst
        .stream
        .workers()
        .filter(|w| w.platform == PlatformId(0))
        .copied()
        .collect();
    let requests: Vec<RequestSpec> = inst.stream.requests().copied().collect();
    let single = Instance {
        config: inst.config.clone(),
        platform_names: vec!["target".into()],
        histories: HashMap::new(),
        stream: EventStream::from_specs(workers, requests),
    };
    let off = offline_solve(&single, OfflineMode::ExactBipartite);
    assert_eq!(off.total_revenue, 18.0);
    assert_eq!(off.completed, 3);
}

#[test]
fn com_offline_optimum_is_21() {
    // Fig. 3(c) / Fig. 4(b): borrowing w3 and w5 at their floors (50% of
    // the request values) lifts the optimum to
    // 4 + 9 + (6−3) + 3 + (4−2) = 21.
    let inst = example_1(3.0, 2.0);
    let off = offline_solve(&inst, OfflineMode::ExactBipartite);
    assert_eq!(off.total_revenue, 21.0);
    assert_eq!(off.completed, 5);
    // Sparse solver agrees.
    let sparse = offline_solve(&inst, OfflineMode::SparseExact);
    assert_eq!(sparse.total_revenue, 21.0);
}

#[test]
fn demcom_completes_all_five_with_willing_outer_workers() {
    // With low acceptance floors both borrowed workers accept DemCOM's
    // minimum payments and all 5 requests complete (Example 2's shape).
    let inst = example_1(0.1, 0.1);
    let run = run_online(&inst, &mut DemCom::default(), 7);
    assert_eq!(run.completed(), 5);
    assert_eq!(run.cooperative_count(), 2);
    // Inner assignments give 4 + 9 + 3 = 16; outer margins are positive.
    assert!(run.total_revenue() > 16.0);
    // The two borrowed workers are exactly w3 and w5.
    let outer_ids: Vec<WorkerId> = run
        .assignments
        .iter()
        .filter(|a| a.is_cooperative_success())
        .map(|a| a.worker.unwrap())
        .collect();
    assert_eq!(outer_ids, vec![WorkerId(3), WorkerId(5)]);
}

#[test]
fn online_never_beats_offline_on_example_1() {
    let inst = example_1(0.1, 0.1);
    let off = offline_solve(&inst, OfflineMode::ExactBipartite);
    for seed in 0..10 {
        let dem = run_online(&inst, &mut DemCom::default(), seed);
        assert!(dem.total_revenue() <= off.total_revenue + 1e-9);
        let ram = run_online(&inst, &mut RamCom::default(), seed);
        assert!(ram.total_revenue() <= off.total_revenue + 1e-9);
        let tota = run_online(&inst, &mut TotaGreedy, seed);
        assert!(tota.total_revenue() <= off.total_revenue + 1e-9);
    }
}
