//! The §II-A road-network generalisation: the Manhattan metric changes
//! service ranges from circles to diamonds without breaking any of
//! Definition 2.6's constraints.

use com::geo::DistanceMetric;
use com::prelude::*;

fn instance(metric: DistanceMetric) -> Instance {
    let mut inst = generate(&synthetic(SyntheticParams {
        n_requests: 400,
        n_workers: 100,
        seed: 88,
        ..Default::default()
    }));
    inst.config.metric = metric;
    inst
}

#[test]
fn manhattan_range_constraint_is_enforced() {
    let inst = instance(DistanceMetric::Manhattan);
    let workers: std::collections::HashMap<WorkerId, WorkerSpec> =
        inst.stream.workers().map(|w| (w.id, *w)).collect();
    let run = run_online(&inst, &mut DemCom::default(), 3);
    let mut first_service: std::collections::HashSet<WorkerId> = Default::default();
    for a in run.assignments.iter().filter(|a| a.is_completed()) {
        let wid = a.worker.unwrap();
        if first_service.insert(wid) {
            // First service starts from the spec location: the L1 range
            // must hold (re-entries drift, so only the first is
            // spec-checkable).
            let spec = workers[&wid];
            assert!(
                spec.location.manhattan_distance(a.request.location) <= spec.radius + 1e-9,
                "L1 range violated for {wid}"
            );
        }
    }
}

#[test]
fn diamonds_serve_fewer_than_circles() {
    // The L1 ball is the inscribed diamond of the L2 ball: strictly less
    // coverage, so completions cannot increase.
    let l2 = run_online(&instance(DistanceMetric::Euclidean), &mut TotaGreedy, 3);
    let l1 = run_online(&instance(DistanceMetric::Manhattan), &mut TotaGreedy, 3);
    assert!(
        l1.completed() <= l2.completed(),
        "L1 {} > L2 {}",
        l1.completed(),
        l2.completed()
    );
    assert!(l1.completed() > 0, "diamond ranges should still serve");
}

#[test]
fn com_ordering_survives_the_metric_change() {
    let inst = instance(DistanceMetric::Manhattan);
    let tota = run_online(&inst, &mut TotaGreedy, 3).total_revenue();
    let dem = run_online(&inst, &mut DemCom::default(), 3).total_revenue();
    let ram = run_online(&inst, &mut RamCom::default(), 3).total_revenue();
    assert!(dem >= tota, "DemCOM {dem} < TOTA {tota} under L1");
    assert!(ram >= tota * 0.95, "RamCOM {ram} ≪ TOTA {tota} under L1");
}

#[test]
fn offline_still_dominates_under_manhattan() {
    let mut inst = instance(DistanceMetric::Manhattan);
    inst.config.service = ServiceModel::one_shot();
    let opt = offline_solve(&inst, OfflineMode::ExactBipartite).total_revenue;
    for seed in [1, 2] {
        let run = run_online(&inst, &mut DemCom::default(), seed);
        assert!(run.total_revenue() <= opt + 1e-6);
    }
}
