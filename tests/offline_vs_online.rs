//! OFF dominates every online algorithm on one-shot instances — the
//! invariant behind every competitive-ratio statement.

use com::prelude::*;

fn one_shot_instance(seed: u64, n_requests: usize, n_workers: usize) -> Instance {
    let mut config = synthetic(SyntheticParams {
        n_requests,
        n_workers,
        radius_km: 2.0,
        seed,
        ..Default::default()
    });
    config.service = ServiceModel::one_shot();
    generate(&config)
}

#[test]
fn exact_off_dominates_every_online_run() {
    for seed in [11, 22, 33] {
        let inst = one_shot_instance(seed, 120, 60);
        let opt = offline_solve(&inst, OfflineMode::ExactBipartite).total_revenue;
        for run_seed in [1, 2] {
            for run in [
                run_online(&inst, &mut TotaGreedy, run_seed),
                run_online(&inst, &mut GreedyRt::default(), run_seed),
                run_online(&inst, &mut DemCom::default(), run_seed),
                run_online(&inst, &mut RamCom::default(), run_seed),
            ] {
                assert!(
                    run.total_revenue() <= opt + 1e-6,
                    "{} revenue {} exceeds OFF {}",
                    run.algorithm,
                    run.total_revenue(),
                    opt
                );
            }
        }
    }
}

#[test]
fn sparse_and_dense_exact_solvers_agree_on_synthetic_instances() {
    for seed in [5, 6] {
        let inst = one_shot_instance(seed, 150, 70);
        let dense = offline_solve(&inst, OfflineMode::ExactBipartite);
        let sparse = offline_solve(&inst, OfflineMode::SparseExact);
        assert!(
            (dense.total_revenue - sparse.total_revenue).abs() < 1e-6,
            "hungarian {} vs ssp {}",
            dense.total_revenue,
            sparse.total_revenue
        );
        assert_eq!(dense.completed, sparse.completed);
    }
}

#[test]
fn upper_bound_caps_everything() {
    let inst = one_shot_instance(77, 100, 50);
    let ub = offline_solve(&inst, OfflineMode::UpperBound).total_revenue;
    let exact = offline_solve(&inst, OfflineMode::ExactBipartite).total_revenue;
    let greedy = offline_solve(&inst, OfflineMode::GreedySchedule).total_revenue;
    assert!(ub >= exact);
    assert!(ub >= greedy);
    // And the exact matching is at least the schedule heuristic here
    // (no re-entry, so both solve the same combinatorial problem).
    assert!(exact >= greedy - 1e-6);
}

#[test]
fn reentry_off_never_serves_fewer_than_one_shot_off() {
    let mut one_shot = synthetic(SyntheticParams {
        n_requests: 200,
        n_workers: 40,
        seed: 9,
        ..Default::default()
    });
    one_shot.service = ServiceModel::one_shot();
    let inst_one = generate(&one_shot);

    let mut reentry = one_shot.clone();
    reentry.service = ServiceModel::default_taxi();
    let inst_re = generate(&reentry);

    // Same entities, same stream (service model does not affect
    // generation), so the comparison is apples to apples.
    assert_eq!(inst_one.stream, inst_re.stream);

    let off_one = offline_solve(&inst_one, OfflineMode::GreedySchedule);
    let off_re = offline_solve(&inst_re, OfflineMode::GreedySchedule);
    assert!(
        off_re.completed >= off_one.completed,
        "re-entry {} < one-shot {}",
        off_re.completed,
        off_one.completed
    );
    assert!(off_re.total_revenue >= off_one.total_revenue - 1e-6);
}

#[test]
fn empirical_ratios_match_report_invariants() {
    let inst = one_shot_instance(3, 80, 40);
    let report = competitive_ratio_random_order(
        &inst,
        &mut || Box::new(DemCom::default()) as Box<dyn OnlineMatcher>,
        12,
        17,
    );
    assert_eq!(report.ratios.len(), 12);
    assert!(report.min <= report.mean && report.mean <= 1.0 + 1e-9);
    assert!(
        report.min > 0.0,
        "greedy never earns zero on these instances"
    );
}
