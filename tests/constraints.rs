//! Definition 2.6's four constraints, checked over full runs of every
//! algorithm (property-style: the engine's assertions enforce them at
//! assignment time; these tests re-verify from the immutable assignment
//! records, independently of the engine).

use std::collections::HashMap;

use com::prelude::*;
use com::stream::ArrivalEvent;

fn check_constraints(inst: &Instance, run: &RunResult) {
    // Reconstruct worker arrival times and specs from the stream.
    let workers: HashMap<WorkerId, WorkerSpec> =
        inst.stream.workers().map(|w| (w.id, *w)).collect();

    // 1-by-1 (one-shot world): every worker serves at most one request.
    let one_shot = !inst.config.service.reentry;
    let mut served_by: HashMap<WorkerId, usize> = HashMap::new();

    for a in &run.assignments {
        match a.kind {
            MatchKind::Rejected => {
                assert!(a.worker.is_none());
                assert_eq!(a.outer_payment, 0.0);
            }
            MatchKind::Inner | MatchKind::Outer => {
                let wid = a.worker.expect("served request has a worker");
                let spec = workers[&wid];
                // Inner/outer classification is correct.
                if a.kind == MatchKind::Inner {
                    assert_eq!(spec.platform, a.request.platform);
                    assert_eq!(a.outer_payment, 0.0);
                } else {
                    assert_ne!(spec.platform, a.request.platform);
                    assert!(a.outer_payment > 0.0);
                    assert!(a.outer_payment <= a.request.value + 1e-9);
                }
                // Time constraint: the worker's first arrival precedes
                // the request (re-entries only happen later still).
                assert!(
                    spec.arrival <= a.request.arrival,
                    "worker {wid} arrived after request {}",
                    a.request.id
                );
                // Range constraint, first service only: the worker's
                // spec location covers the request (after re-entry the
                // worker moves, so only the first service is checkable
                // from the specs alone).
                let count = served_by.entry(wid).or_insert(0);
                if *count == 0 {
                    assert!(
                        spec.covers(a.request.location) || inst.config.service.reentry,
                        "range violated on first service of {wid}"
                    );
                }
                *count += 1;
            }
        }
    }

    if one_shot {
        for (wid, count) in &served_by {
            assert!(*count <= 1, "worker {wid} served {count} times (one-shot)");
        }
    }

    // Every request in the stream got exactly one decision, in order.
    let request_ids: Vec<RequestId> = inst
        .stream
        .iter()
        .filter_map(|e| match e {
            ArrivalEvent::Request(r) => Some(r.id),
            _ => None,
        })
        .collect();
    let decided: Vec<RequestId> = run.assignments.iter().map(|a| a.request.id).collect();
    assert_eq!(request_ids, decided);
}

fn instances() -> Vec<Instance> {
    let mut one_shot = synthetic(SyntheticParams {
        n_requests: 300,
        n_workers: 90,
        seed: 404,
        ..Default::default()
    });
    one_shot.service = ServiceModel::one_shot();
    let reentry = synthetic(SyntheticParams {
        n_requests: 300,
        n_workers: 90,
        seed: 405,
        ..Default::default()
    });
    vec![generate(&one_shot), generate(&reentry)]
}

#[test]
fn tota_satisfies_definition_2_6() {
    for inst in instances() {
        let run = run_online(&inst, &mut TotaGreedy, 1);
        check_constraints(&inst, &run);
        // TOTA additionally never borrows.
        assert!(run.assignments.iter().all(|a| a.kind != MatchKind::Outer));
    }
}

#[test]
fn demcom_satisfies_definition_2_6() {
    for inst in instances() {
        let run = run_online(&inst, &mut DemCom::default(), 2);
        check_constraints(&inst, &run);
    }
}

#[test]
fn ramcom_satisfies_definition_2_6() {
    for inst in instances() {
        let run = run_online(&inst, &mut RamCom::default(), 3);
        check_constraints(&inst, &run);
    }
}

#[test]
fn greedy_rt_satisfies_definition_2_6() {
    for inst in instances() {
        let run = run_online(&inst, &mut GreedyRt::default(), 4);
        check_constraints(&inst, &run);
    }
}

#[test]
fn invariable_constraint_under_reentry() {
    // A worker serving a request stays busy for the whole service window:
    // no other assignment of the same worker may start before the
    // previous one's completion. We reconstruct service windows with the
    // service model.
    let inst = generate(&synthetic(SyntheticParams {
        n_requests: 400,
        n_workers: 30, // scarce workers → lots of re-use
        seed: 406,
        ..Default::default()
    }));
    let run = run_online(&inst, &mut DemCom::default(), 9);
    let mut windows: HashMap<WorkerId, Vec<(f64, f64)>> = HashMap::new();
    let mut locations: HashMap<WorkerId, Point> =
        inst.stream.workers().map(|w| (w.id, w.location)).collect();
    for a in &run.assignments {
        if let Some(wid) = a.worker {
            let start = a.request.arrival.as_secs();
            let loc = locations[&wid];
            let busy = inst.config.service.busy_secs(loc, a.request.location);
            windows.entry(wid).or_default().push((start, start + busy));
            locations.insert(wid, a.request.location);
        }
    }
    for (wid, spans) in windows {
        for pair in spans.windows(2) {
            assert!(
                pair[1].0 >= pair[0].1 - 1e-6,
                "worker {wid} reassigned at {} before finishing at {}",
                pair[1].0,
                pair[0].1
            );
        }
    }
}
