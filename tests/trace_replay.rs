//! The flight-recorder contract, end to end:
//!
//! * a trace recorded by playing an instance through a `ServeSession`
//!   replays **byte-identically** (decisions, digest, canonical run) for
//!   every builtin matcher spec, with a silent auditor;
//! * a trace recorded by a *live* `matchd --record` session over loopback
//!   TCP replays byte-identically to what the live client observed;
//! * a tampered trace is caught: lenient replay reports the divergence at
//!   the right event index with both decisions, and `matchreplay
//!   --strict` exits nonzero;
//! * `stats_deep` over loopback returns the populated serving phase
//!   table.

use std::path::PathBuf;
use std::process::Command;

use com_core::MatcherSpec;
use com_datagen::{generate, synthetic, SyntheticParams};
use com_serve::{
    record_session, replay_scenario, replay_trace, serve, ReplayOptions, ServerConfig,
    TraceReplayOptions,
};
use com_sim::Instance;

fn quick_instance() -> Instance {
    generate(&synthetic(SyntheticParams {
        n_requests: 120,
        n_workers: 40,
        ..SyntheticParams::default()
    }))
}

/// A unique scratch directory per test (tests run in parallel threads of
/// one process, so the pid alone is not enough).
fn scratch(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("com-trace-replay-{}-{tag}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("create scratch dir");
    dir
}

fn canonical_text(value: &serde_json::Value) -> String {
    let text = serde_json::to_string(value).expect("serialise");
    let parsed: serde_json::Value = serde_json::from_str(&text).expect("round-trip");
    serde_json::to_string(&parsed).expect("serialise")
}

#[test]
fn every_builtin_spec_replays_byte_identically() {
    let instance = quick_instance();
    let dir = scratch("specs");
    for spec in MatcherSpec::all_builtin() {
        let spec_str = spec.to_string();
        let path = dir.join(format!(
            "{}.jsonl",
            com_serve::trace::sanitize_spec(&spec_str)
        ));
        let recorded =
            record_session(&path, &instance, &spec_str, 7).expect("record local session");
        assert!(recorded.findings.is_empty(), "{spec_str}: audit at record");

        let report =
            replay_trace(&path, &TraceReplayOptions::default()).expect("replay recorded trace");
        assert!(
            report.is_clean(),
            "{spec_str}: divergences {:?}, findings {:?}",
            report.divergences,
            report.audit_findings,
        );
        assert_eq!(report.digest_expected.as_deref(), Some(&*report.digest_got));
        assert_eq!(report.events, instance.stream.len() as u64);
        assert_eq!(report.decisions, instance.request_count() as u64);
        // Full canonical byte-identity with the recording-time run, not
        // just the digest.
        let recorded_canonical = com_bench::runner::canonical_run_json(&recorded.run);
        assert_eq!(
            canonical_text(&recorded_canonical),
            canonical_text(&report.canonical),
            "{spec_str}: canonical run changed across replay",
        );
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn live_recorded_session_replays_byte_identically() {
    let instance = quick_instance();
    let dir = scratch("live");
    let handle = serve(ServerConfig {
        record_dir: Some(dir.clone()),
        ..ServerConfig::default()
    })
    .expect("bind ephemeral port");
    let addr = handle.addr().to_string();

    let options = ReplayOptions {
        matcher: "demcom".into(),
        seed: 31,
        ..ReplayOptions::default()
    };
    let report = replay_scenario(&addr, &instance, &options).expect("loopback replay");
    assert!(report.bye.audit_findings.is_empty());
    handle.shutdown();

    // Exactly one session trace was recorded, named after the session.
    let traces: Vec<PathBuf> = std::fs::read_dir(&dir)
        .expect("read record dir")
        .map(|e| e.expect("dir entry").path())
        .collect();
    assert_eq!(traces.len(), 1, "traces: {traces:?}");
    let name = traces[0].file_name().unwrap().to_string_lossy().to_string();
    assert!(
        name.starts_with("session-0-demcom-31") && name.ends_with(".jsonl"),
        "unexpected trace name {name}"
    );

    // The recording replays byte-identically, and the replayed canonical
    // run is the very value the live client received in its `bye`.
    let replayed =
        replay_trace(&traces[0], &TraceReplayOptions::default()).expect("replay live trace");
    assert!(
        replayed.is_clean(),
        "divergences {:?}, findings {:?}",
        replayed.divergences,
        replayed.audit_findings,
    );
    assert_eq!(replayed.events, instance.stream.len() as u64);
    assert_eq!(
        canonical_text(&replayed.canonical),
        canonical_text(&report.bye.canonical),
        "replay of the live recording diverged from what the client saw",
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn tampered_decision_is_reported_at_its_event_index_and_fails_strict() {
    let instance = quick_instance();
    let dir = scratch("tamper");
    let path = dir.join("original.jsonl");
    record_session(&path, &instance, "demcom", 7).expect("record");

    // Flip the first assigned decision to a rejection, leaving every
    // other byte of the trace alone.
    let text = std::fs::read_to_string(&path).expect("read trace");
    let mut tampered_index = None;
    let tampered_text: Vec<String> = text
        .lines()
        .map(|line| {
            if tampered_index.is_none()
                && line.starts_with("{\"type\":\"decision\"")
                && line.contains("\"outcome\":\"assign\"")
            {
                let i_field = line
                    .split("\"i\":")
                    .nth(1)
                    .and_then(|rest| rest.split([',', '}']).next())
                    .and_then(|digits| digits.trim().parse::<u64>().ok())
                    .expect("decision line has an index");
                tampered_index = Some(i_field);
                line.replace("\"outcome\":\"assign\"", "\"outcome\":\"reject\"")
            } else {
                line.to_string()
            }
        })
        .collect();
    let tampered_index = tampered_index.expect("trace has at least one assignment");
    let tampered_path = dir.join("tampered.jsonl");
    std::fs::write(&tampered_path, tampered_text.join("\n") + "\n").expect("write tampered");

    // Lenient replay: the run itself is unchanged (the engine ignores
    // recorded decisions), so exactly one divergence — the flipped
    // decision, at its event index, with both sides reported.
    let report =
        replay_trace(&tampered_path, &TraceReplayOptions::default()).expect("replay tampered");
    assert_eq!(report.divergences.len(), 1, "{:?}", report.divergences);
    let d = &report.divergences[0];
    assert_eq!(d.index, tampered_index);
    assert_eq!(d.field, "decision");
    assert!(d.expected.contains("\"outcome\":\"reject\""), "{d:?}");
    assert!(d.got.contains("\"outcome\":\"assign\""), "{d:?}");
    assert!(!report.is_clean());

    // The matchreplay binary: strict exits nonzero on the tampered
    // trace, lenient exits zero while still reporting; the pristine
    // trace passes strict.
    let bin = env!("CARGO_BIN_EXE_matchreplay");
    let strict_bad = Command::new(bin)
        .args(["--strict", tampered_path.to_str().unwrap()])
        .output()
        .expect("run matchreplay");
    assert!(
        !strict_bad.status.success(),
        "strict must fail on a tampered trace: {}",
        String::from_utf8_lossy(&strict_bad.stdout)
    );
    let stderr = String::from_utf8_lossy(&strict_bad.stderr);
    assert!(
        stderr.contains(&format!("event {tampered_index} decision")),
        "divergence report names the event index: {stderr}"
    );
    let lenient_bad = Command::new(bin)
        .arg(tampered_path.to_str().unwrap())
        .output()
        .expect("run matchreplay");
    assert!(lenient_bad.status.success(), "lenient reports but passes");
    let strict_good = Command::new(bin)
        .args(["--strict", path.to_str().unwrap()])
        .output()
        .expect("run matchreplay");
    assert!(
        strict_good.status.success(),
        "pristine trace must pass strict: {}{}",
        String::from_utf8_lossy(&strict_good.stdout),
        String::from_utf8_lossy(&strict_good.stderr)
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn deep_stats_reports_the_serving_phase_table_over_loopback() {
    let instance = quick_instance();
    let handle = serve(ServerConfig::default()).expect("bind ephemeral port");
    let addr = handle.addr().to_string();

    let options = ReplayOptions {
        matcher: "greedy-rt".into(),
        seed: 5,
        ..ReplayOptions::default()
    };
    let report = replay_scenario(&addr, &instance, &options).expect("loopback replay");
    handle.shutdown();

    let deep = report.deep_stats.expect("server answers stats_deep");
    assert_eq!(deep.stats.events, instance.stream.len() as u64);
    assert_eq!(deep.busy_dropped, 0);
    // Lockstep client: at most one line in flight, but the queue was used.
    assert!(deep.queue_high_water >= 1, "{:?}", deep.queue_high_water);
    for phase in ["decode", "ingest", "encode", "flush"] {
        let row = deep
            .phase(phase)
            .unwrap_or_else(|| panic!("phase {phase} missing: {:?}", deep.phases));
        assert!(row.count > 0, "{phase}: zero spans");
        assert!(row.max_ns > 0, "{phase}: zero max");
    }
    // The engine's own decision phase rides in the same table (nested
    // inside ingest), one span per request.
    let decision = deep.phase("decision").expect("decision phase");
    assert_eq!(decision.count, instance.request_count() as u64);
}
