//! Federated loopback identity: one scenario through two in-process
//! `matchd` daemons joined by the inter-daemon outsourcing protocol is
//! byte-identical — canonical run, digest, ledgers — to a single-process
//! batch run over the same instance and seed, in both wire framings.

use com_bench::runner::canonical_run_json;
use com_core::{try_run_online, MatcherRegistry};
use com_datagen::{generate, synthetic, SyntheticParams};
use com_fed::{drive_federated, run_loopback, verify, FedOptions, LoopbackPair};
use com_serve::{ServerConfig, WireFormat};
use com_sim::{Instance, MatchKind};

fn quick_instance() -> Instance {
    generate(&synthetic(SyntheticParams {
        n_requests: 200,
        n_workers: 60,
        ..SyntheticParams::default()
    }))
}

/// The fixture must actually exercise the wire: a scenario with no outer
/// assignments would pass identity vacuously.
fn assert_fixture_outsources(instance: &Instance, options: &FedOptions) {
    let registry = MatcherRegistry::builtin();
    let mut matcher = registry.resolve(&options.matcher).unwrap()();
    let run = try_run_online(instance, matcher.as_mut(), options.seed);
    assert!(
        run.assignments.iter().any(|a| a.kind == MatchKind::Outer),
        "fixture never outsources — no offer would cross the wire"
    );
}

#[test]
fn federated_pair_is_byte_identical_to_batch_run_ndjson() {
    let instance = quick_instance();
    let options = FedOptions {
        seed: 9,
        ..FedOptions::default()
    };
    assert_fixture_outsources(&instance, &options);
    let (report, failures) = run_loopback(&instance, &options).expect("federated drive");
    assert_eq!(failures, Vec::<String>::new());
    assert_eq!(report.events, instance.stream.len());

    // Offers actually crossed the wire in at least one direction and
    // none degraded.
    let mut sent = 0u64;
    for daemon in &report.daemons {
        let fed = daemon.bye.fed.as_ref().expect("fed half present");
        assert_eq!(fed.degraded_offers, 0);
        let stats = daemon
            .deep_stats
            .as_ref()
            .and_then(|d| d.federation.as_ref())
            .expect("federation counters present");
        sent += stats.offers_sent;
        assert_eq!(stats.offers_sent, stats.offers_accepted);
        assert_eq!(stats.offers_timed_out, 0);
        assert_eq!(stats.offers_rejected, 0);
    }
    assert!(sent > 0, "no offer ever crossed the wire");
}

#[test]
fn federated_pair_is_byte_identical_to_batch_run_binary() {
    let instance = quick_instance();
    let options = FedOptions {
        seed: 9,
        frame: WireFormat::Binary,
        ..FedOptions::default()
    };
    let (report, failures) = run_loopback(&instance, &options).expect("federated drive");
    assert_eq!(failures, Vec::<String>::new());
    assert!(report.daemons.iter().any(|d| d
        .deep_stats
        .as_ref()
        .and_then(|s| s.federation.as_ref())
        .map(|f| f.offers_sent)
        .unwrap_or(0)
        > 0));
}

#[test]
fn ledgers_split_the_reference_revenue() {
    let instance = quick_instance();
    let options = FedOptions {
        seed: 11,
        ..FedOptions::default()
    };
    let (report, failures) = run_loopback(&instance, &options).expect("federated drive");
    assert_eq!(failures, Vec::<String>::new());

    let registry = MatcherRegistry::builtin();
    let mut matcher = registry.resolve(&options.matcher).unwrap()();
    let reference = try_run_online(&instance, matcher.as_mut(), options.seed);
    let split: f64 = report
        .daemons
        .iter()
        .map(|d| d.bye.fed.as_ref().unwrap().ledger.revenue)
        .sum();
    assert!((split - reference.total_revenue()).abs() < 1e-6);
    // The outsourcing side-channel nets to zero across the pair.
    let net: f64 = report
        .daemons
        .iter()
        .map(|d| d.bye.fed.as_ref().unwrap().ledger.outsource_net())
        .sum();
    assert!(net.abs() < 1e-6);
}

#[test]
fn verify_catches_a_wrong_seed_reference() {
    let instance = quick_instance();
    let options = FedOptions {
        seed: 9,
        ..FedOptions::default()
    };
    let pair = LoopbackPair::start(&ServerConfig::default()).expect("bind");
    let report =
        drive_federated(&pair.addr_a(), &pair.addr_b(), &instance, &options).expect("drive");
    // Same drive verified against a different-seed reference must fail:
    // the check is not vacuous.
    let skewed = FedOptions {
        seed: 10,
        ..options.clone()
    };
    let skewed_reference_differs = {
        let registry = MatcherRegistry::builtin();
        let mut m9 = registry.resolve("demcom").unwrap()();
        let mut m10 = registry.resolve("demcom").unwrap()();
        let r9 = try_run_online(&instance, m9.as_mut(), 9);
        let r10 = try_run_online(&instance, m10.as_mut(), 10);
        serde_json::to_string(&canonical_run_json(&r9)).unwrap()
            != serde_json::to_string(&canonical_run_json(&r10)).unwrap()
    };
    if skewed_reference_differs {
        assert!(!verify(&instance, &report, &skewed).is_empty());
    }
    assert_eq!(verify(&instance, &report, &options), Vec::<String>::new());
    pair.shutdown();
}
