//! Scalability sweep: a compact, runnable version of the paper's
//! Fig. 5(a)/(b)/(d) panels (revenue, response time, and acceptance
//! ratio as `|R|` grows).
//!
//! The full sweep (up to |R| = 100k) lives in the bench harness
//! (`cargo run -p com-bench --release --bin repro -- fig5r`); this
//! example keeps the points small enough to finish in seconds.
//!
//! ```text
//! cargo run --release --example scalability_sweep
//! ```

use com::prelude::*;

fn main() {
    let sizes = [500usize, 1_000, 2_500, 5_000];
    let mut revenue = SweepSeries::new(
        "Total revenue vs |R| (cf. Fig 5(a))",
        "|R|",
        "Revenue (¥)",
        sizes.iter().map(|&v| v as f64).collect(),
    );
    let mut response = SweepSeries::new(
        "Response time vs |R| (cf. Fig 5(b))",
        "|R|",
        "ms / request",
        sizes.iter().map(|&v| v as f64).collect(),
    );
    let mut acceptance = SweepSeries::new(
        "Acceptance ratio vs |R| (cf. Fig 5(d))",
        "|R|",
        "AcpRt",
        sizes.iter().map(|&v| v as f64).collect(),
    );

    let names = ["TOTA", "DemCOM", "RamCOM"];
    let mut rev_cols = vec![Vec::new(); 3];
    let mut rt_cols = vec![Vec::new(); 3];
    let mut acc_cols = vec![Vec::new(); 2];

    for &n in &sizes {
        let instance = generate(&synthetic(SyntheticParams {
            n_requests: n,
            ..Default::default()
        }));
        eprintln!("|R| = {n}: running 3 algorithms…");
        for (i, name) in names.iter().enumerate() {
            let mut matcher: Box<dyn OnlineMatcher> = match *name {
                "TOTA" => Box::new(TotaGreedy),
                "DemCOM" => Box::new(DemCom::default()),
                _ => Box::new(RamCom::default()),
            };
            let run = run_online(&instance, matcher.as_mut(), 11);
            rev_cols[i].push(run.total_revenue());
            rt_cols[i].push(run.mean_response_ms());
            if *name == "DemCOM" {
                acc_cols[0].push(run.acceptance_ratio().unwrap_or(0.0));
            } else if *name == "RamCOM" {
                acc_cols[1].push(run.acceptance_ratio().unwrap_or(0.0));
            }
        }
    }

    for (i, name) in names.iter().enumerate() {
        revenue.push_column(*name, rev_cols[i].clone());
        response.push_column(*name, rt_cols[i].clone());
    }
    acceptance.push_column("DemCOM", acc_cols[0].clone());
    acceptance.push_column("RamCOM", acc_cols[1].clone());

    println!("{}", revenue.to_table(0).render_ascii());
    println!("{}", response.to_table(4).render_ascii());
    println!("{}", acceptance.to_table(3).render_ascii());

    // The paper's headline shape, checked programmatically.
    match (
        revenue.dominates("RamCOM", "TOTA", 1.0),
        revenue.dominates("DemCOM", "TOTA", 1.0),
    ) {
        (Some(true), Some(true)) => {
            println!("shape check: COM algorithms dominate TOTA at every |R| ✓")
        }
        _ => println!("shape check: dominance violated — inspect the tables above"),
    }
}
