//! Food delivery: a *three*-platform COM scenario (the paper's intro
//! names Meituan, Ele.me and Baidu as same-service competitors).
//!
//! Demonstrates that COM generalises beyond two platforms: each platform
//! borrows from the union of the other two. Delivery riders have small
//! service radii (1 km) and short jobs (8 minutes), and lunch demand is
//! a single sharp peak.
//!
//! ```text
//! cargo run --release --example food_delivery
//! ```

use com::prelude::*;

fn build_scenario() -> ScenarioConfig {
    let extent = BoundingBox::square(12.0); // a dense delivery zone
    let business = SpatialMixture::new(
        extent,
        vec![
            Hotspot::new(Point::new(4.0, 6.0), 1.0, 1.0), // office cluster
            Hotspot::new(Point::new(8.5, 7.5), 1.2, 0.6), // mall
        ],
        0.4,
    );
    let lunch_peak = DailyProfile {
        morning: (12.0, 0.8), // the "morning" slot carries the lunch rush
        evening: (18.5, 1.0),
        weights: (0.6, 0.25, 0.15),
    };
    let rider_shift = DailyProfile {
        morning: (10.5, 1.0),
        evening: (17.0, 1.0),
        weights: (0.6, 0.3, 0.1),
    };
    let platform = |name: &str, requests: usize, riders: usize, spatial: SpatialMixture| {
        PlatformSpec {
            name: name.into(),
            n_requests: requests,
            n_workers: riders,
            radius_km: 1.0,
            worker_spatial: spatial.clone(),
            request_spatial: spatial.complement(),
            values: ValueDistribution::Normal {
                mean: 9.0,
                std: 2.5,
            }, // delivery fees
            // Rider-side per-job payments cluster just below the fee.
            history_values: ValueDistribution::Normal {
                mean: 7.0,
                std: 1.0,
            },
            history_len: (30, 90),
        }
    };
    ScenarioConfig {
        extent,
        platforms: vec![
            platform("Meituan", 1_500, 120, business.clone()),
            platform("Ele.me", 1_200, 100, business.complement()),
            platform("Baidu", 600, 60, business),
        ],
        service: ServiceModel::taxi(18.0, 480.0), // e-bike speed, 8-min jobs
        request_profile: lunch_peak,
        worker_profile: rider_shift,
        update_histories: false,
        seed: 0xF00D,
    }
}

fn main() {
    let scenario = build_scenario();
    let instance = generate(&scenario);
    println!(
        "Three delivery platforms, {} orders, {} riders\n",
        instance.request_count(),
        instance.worker_count()
    );

    let mut table = Table::new(
        "Cross-platform delivery (per algorithm)",
        &["Method", "Revenue (¥)", "Completed", "|CoR|", "|AcpRt|"],
    );
    let mut matchers: Vec<Box<dyn OnlineMatcher>> = vec![
        Box::new(TotaGreedy),
        Box::new(DemCom::default()),
        Box::new(RamCom::default()),
    ];
    let mut runs = Vec::new();
    for matcher in &mut matchers {
        let run = run_online(&instance, matcher.as_mut(), 7);
        table.push_row(vec![
            run.algorithm.clone(),
            format!("{:.0}", run.total_revenue()),
            run.completed().to_string(),
            run.cooperative_count().to_string(),
            run.acceptance_ratio()
                .map_or("-".into(), |v| format!("{v:.2}")),
        ]);
        runs.push(run);
    }
    println!("{}", table.render_ascii());

    // Who borrows from whom under RamCOM?
    let ram = &runs[2];
    let mut flows = Table::new(
        "RamCOM borrow flows (requests served by another platform's rider)",
        &["Requester", "Rider from", "Jobs", "Rider earnings (¥)"],
    );
    for from in 0..instance.platform_names.len() {
        for to in 0..instance.platform_names.len() {
            if from == to {
                continue;
            }
            let jobs: Vec<&Assignment> = ram
                .assignments
                .iter()
                .filter(|a| {
                    a.is_cooperative_success()
                        && a.request.platform == PlatformId(from as u16)
                        && a.worker_platform == Some(PlatformId(to as u16))
                })
                .collect();
            if jobs.is_empty() {
                continue;
            }
            let earnings: f64 = jobs.iter().map(|a| a.outer_payment).sum();
            flows.push_row(vec![
                instance.platform_names[from].clone(),
                instance.platform_names[to].clone(),
                jobs.len().to_string(),
                format!("{earnings:.0}"),
            ]);
        }
    }
    println!("{}", flows.render_ascii());
}
