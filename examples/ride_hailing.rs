//! Ride hailing: a full simulated Chengdu day (the Table V dataset pair,
//! RDC10 + RYC10 at 1/10 scale) with two competing platforms borrowing
//! each other's drivers.
//!
//! Reports per-platform revenue and completion, the cooperative-request
//! economics, and each side's driver earnings — including what lender
//! platforms' drivers earn from borrowed jobs, the "win-win" of the
//! paper's Example 1.
//!
//! ```text
//! cargo run --release --example ride_hailing
//! ```

use com::prelude::*;

fn main() {
    let scenario = chengdu_oct();
    println!(
        "Simulating Chengdu, Oct 2016 at 1/10 scale: {} requests, {} drivers…\n",
        scenario.total_requests(),
        scenario.total_workers()
    );
    let instance = generate(&scenario);

    let mut demcom = DemCom::default();
    let run = run_online(&instance, &mut demcom, 2020);

    let mut table = Table::new(
        "DemCOM on RDC10 + RYC10 (per platform)",
        &[
            "Platform",
            "Revenue (¥)",
            "Completed",
            "Rejected",
            "Borrowed-in",
            "Lent-out",
        ],
    );

    for p in [PlatformId(0), PlatformId(1)] {
        let name = instance.platform_names[p.index()].clone();
        let own: Vec<&Assignment> = run
            .assignments
            .iter()
            .filter(|a| a.request.platform == p)
            .collect();
        let rejected = own.iter().filter(|a| !a.is_completed()).count();
        // Requests of p served by borrowed (other-platform) workers.
        let borrowed_in = own.iter().filter(|a| a.is_cooperative_success()).count();
        // p's own workers serving other platforms' requests.
        let lent_out = run
            .assignments
            .iter()
            .filter(|a| a.is_cooperative_success() && a.worker_platform == Some(p))
            .count();
        table.push_row(vec![
            name,
            format!("{:.0}", run.revenue_for(p)),
            run.completed_for(p).to_string(),
            rejected.to_string(),
            borrowed_in.to_string(),
            lent_out.to_string(),
        ]);
    }
    println!("{}", table.render_ascii());

    // The lender side of the market: what outer workers earned.
    let outer_earnings: f64 = run
        .assignments
        .iter()
        .filter(|a| a.is_cooperative_success())
        .map(|a| a.outer_payment)
        .sum();
    println!(
        "cooperative requests accepted: {} (acceptance ratio {:.2})",
        run.cooperative_count(),
        run.acceptance_ratio().unwrap_or(0.0),
    );
    println!(
        "outer payments to borrowed drivers: ¥{outer_earnings:.0} \
         (mean rate v'/v = {:.2})",
        run.mean_outer_payment_rate().unwrap_or(0.0)
    );
    println!(
        "mean decision latency: {:.4} ms/request",
        run.mean_response_ms()
    );

    // Compare against the no-cooperation world.
    let tota = run_online(&instance, &mut TotaGreedy, 2020);
    let gain = run.total_revenue() - tota.total_revenue();
    println!(
        "\nWithout cooperation (TOTA) the two platforms make ¥{:.0}; with\n\
         DemCOM they make ¥{:.0} — a ¥{:.0} ({:.1}%) daily gain without\n\
         adding a single driver.",
        tota.total_revenue(),
        run.total_revenue(),
        gain,
        100.0 * gain / tota.total_revenue().max(1.0),
    );
}
