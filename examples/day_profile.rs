//! Day profile: the hour-by-hour operational view of one simulated city
//! day under DemCOM — where the demand peaks hit, when requests get
//! rejected, and when cross-platform borrowing actually fires.
//!
//! ```text
//! cargo run --release --example day_profile
//! ```

use com::core::{hourly_timeline, HourlyBucket};
use com::metrics::sparkline_row;
use com::prelude::*;

fn main() {
    let instance = generate(&synthetic(SyntheticParams {
        n_requests: 5_000,
        n_workers: 800,
        seed: 2024,
        ..Default::default()
    }));
    let run = run_online(&instance, &mut DemCom::default(), 11);
    let timeline = hourly_timeline(&run);

    println!(
        "DemCOM over one synthetic day: {} requests, {} workers\n",
        instance.request_count(),
        instance.worker_count()
    );

    let col = |f: fn(&HourlyBucket) -> f64| -> Vec<f64> { timeline.iter().map(f).collect() };
    println!("hour                     0                      23");
    println!("{}", sparkline_row("requests", &col(|b| b.requests as f64)));
    println!(
        "{}",
        sparkline_row("completed", &col(|b| b.completed as f64))
    );
    println!("{}", sparkline_row("rejected", &col(|b| b.rejected as f64)));
    println!(
        "{}",
        sparkline_row("borrowed", &col(|b| b.cooperative as f64))
    );
    println!("{}", sparkline_row("revenue ¥", &col(|b| b.revenue)));
    println!("{}", sparkline_row("pickup km", &col(|b| b.mean_pickup_km)));

    // Detail table for the rush hours.
    let mut table = Table::new(
        "Rush-hour detail",
        &[
            "Hour", "Requests", "Served", "Inner", "Borrowed", "Rejected", "Revenue", "Rate",
        ],
    );
    for b in timeline.iter().filter(|b| b.requests > 0) {
        if b.hour >= 7 && b.hour <= 9 || b.hour >= 17 && b.hour <= 19 {
            table.push_row(vec![
                format!("{:02}:00", b.hour),
                b.requests.to_string(),
                b.completed.to_string(),
                b.inner.to_string(),
                b.cooperative.to_string(),
                b.rejected.to_string(),
                format!("{:.0}", b.revenue),
                format!("{:.0}%", b.completion_rate() * 100.0),
            ]);
        }
    }
    println!("\n{}", table.render_ascii());
    println!(
        "Borrowing concentrates in the peaks: when a platform's own fleet\n\
         saturates, the rival's idle workers absorb the overflow — exactly\n\
         the situation of the paper's Fig. 1/Fig. 2 motivation."
    );
}
