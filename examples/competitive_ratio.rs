//! Competitive ratios: measure the empirical `CR_RO` of each algorithm
//! against the exact offline optimum on small one-shot instances
//! (Definitions 2.7/2.8; Theorems 1–2).
//!
//! ```text
//! cargo run --release --example competitive_ratio
//! ```

use com::prelude::*;

type MatcherFactory = fn() -> Box<dyn OnlineMatcher>;

fn main() {
    // Small instances where Hungarian OFF is exact and fast. One-shot
    // service (no re-entry) is the regime the theory speaks about.
    let mut config = synthetic(SyntheticParams {
        n_requests: 80,
        n_workers: 40,
        radius_km: 3.0,
        seed: 99,
        ..Default::default()
    });
    config.service = ServiceModel::one_shot();
    let instance = generate(&config);

    let opt = offline_solve(&instance, OfflineMode::ExactBipartite);
    println!(
        "offline optimum (Hungarian, one-shot): ¥{:.0} over {} requests\n",
        opt.total_revenue,
        instance.request_count()
    );

    let orders = 40;
    let mut table = Table::new(
        format!("Empirical competitive ratios over {orders} random arrival orders"),
        &["Algorithm", "min ratio", "mean ratio (≈ CR_RO)"],
    );

    let algorithms: [(&str, MatcherFactory); 4] = [
        ("TOTA", || Box::new(TotaGreedy)),
        ("Greedy-RT", || Box::new(GreedyRt::default())),
        ("DemCOM", || Box::new(DemCom::default())),
        ("RamCOM", || Box::new(RamCom::default())),
    ];

    for (name, factory) in algorithms {
        let report = competitive_ratio_random_order(&instance, &mut || factory(), orders, 2020);
        table.push_row(vec![
            name.into(),
            format!("{:.3}", report.min),
            format!("{:.3}", report.mean),
        ]);
    }

    println!("{}", table.render_ascii());
    println!(
        "theory: RamCOM's proven worst-case bound is 1/(8e) ≈ {:.3};\n\
         DemCOM matches greedy TOTA's random-order ratio (Theorem 1).\n\
         Empirical means sit far above the worst-case bounds, as the\n\
         paper observes — the 1/k! worst cases essentially never occur.",
        1.0 / (8.0 * std::f64::consts::E)
    );
}
