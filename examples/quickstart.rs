//! Quickstart: generate a small two-platform city, run all four methods,
//! and print a Table V-style comparison.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use com::prelude::*;

fn main() {
    // A Table IV-style synthetic scenario: two competing platforms
    // ("DiDi" and "Yueche") over the Chengdu geometry, 2,500 requests and
    // 500 workers in total, rad = 1 km.
    let scenario = synthetic(SyntheticParams::default());
    let instance = generate(&scenario);
    println!(
        "instance: {} requests, {} workers, 2 platforms, max fare ¥{:.1}\n",
        instance.request_count(),
        instance.worker_count(),
        instance.max_value().unwrap_or(0.0),
    );

    let mut table = Table::new(
        "Quickstart: one synthetic city-day",
        &[
            "Method",
            "Revenue (¥)",
            "Completed",
            "|CoR|",
            "|AcpRt|",
            "v'/v",
            "ms/request",
        ],
    );

    // OFF: the full-knowledge baseline (upper reference).
    let off = offline_solve(&instance, OfflineMode::GreedySchedule);
    table.push_row(vec![
        "OFF".into(),
        format!("{:.0}", off.total_revenue),
        off.completed.to_string(),
        "-".into(),
        "-".into(),
        "-".into(),
        "-".into(),
    ]);

    // The three online algorithms, replayed over the same arrival stream.
    let seed = 42;
    let mut matchers: Vec<Box<dyn OnlineMatcher>> = vec![
        Box::new(TotaGreedy),
        Box::new(DemCom::default()),
        Box::new(RamCom::default()),
    ];
    for matcher in &mut matchers {
        let run = run_online(&instance, matcher.as_mut(), seed);
        table.push_row(vec![
            run.algorithm.clone(),
            format!("{:.0}", run.total_revenue()),
            run.completed().to_string(),
            run.cooperative_count().to_string(),
            run.acceptance_ratio()
                .map_or("-".into(), |v| format!("{v:.2}")),
            run.mean_outer_payment_rate()
                .map_or("-".into(), |v| format!("{v:.2}")),
            format!("{:.4}", run.mean_response_ms()),
        ]);
    }

    println!("{}", table.render_ascii());
    println!(
        "Reading the table: DemCOM and RamCOM \"borrow\" idle workers from\n\
         the competing platform for requests TOTA has to reject, so they\n\
         complete more requests and collect more revenue; RamCOM's\n\
         expected-revenue pricing accepts more cooperative offers than\n\
         DemCOM's minimum payments (higher |AcpRt|), at a higher v'/v."
    );
}
