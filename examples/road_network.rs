//! Road networks: COM under the Manhattan (grid-road) distance metric.
//!
//! The paper (§II-A) notes COM "can be equivalently changed into the
//! shortest path distance in road networks by just changing the service
//! range from circulars to irregular shapes". This example runs the same
//! synthetic city under the Euclidean base model and the Manhattan
//! surrogate: service ranges become diamonds (≈ 36% smaller area for the
//! same `rad`), travel times use L1 distance, and every algorithm works
//! unchanged.
//!
//! ```text
//! cargo run --release --example road_network
//! ```

use com::geo::DistanceMetric;
use com::prelude::*;

fn run_city(metric: DistanceMetric, label: &str, table: &mut Table) {
    let mut instance = generate(&synthetic(SyntheticParams {
        n_requests: 2_000,
        n_workers: 400,
        seed: 77,
        ..Default::default()
    }));
    instance.config.metric = metric;

    let mut matchers: Vec<Box<dyn OnlineMatcher>> = vec![
        Box::new(TotaGreedy),
        Box::new(DemCom::default()),
        Box::new(RamCom::default()),
    ];
    for matcher in &mut matchers {
        let run = run_online(&instance, matcher.as_mut(), 5);
        table.push_row(vec![
            format!("{label}/{}", run.algorithm),
            format!("{:.0}", run.total_revenue()),
            run.completed().to_string(),
            run.cooperative_count().to_string(),
            run.mean_pickup_km()
                .map_or("-".into(), |v| format!("{v:.2}")),
        ]);
    }
}

fn main() {
    let mut table = Table::new(
        "Euclidean circles vs Manhattan diamonds (same city, same rad)",
        &[
            "Metric/Method",
            "Revenue (¥)",
            "Completed",
            "|CoR|",
            "Pickup (km)",
        ],
    );
    run_city(DistanceMetric::Euclidean, "L2", &mut table);
    run_city(DistanceMetric::Manhattan, "L1", &mut table);
    println!("{}", table.render_ascii());
    println!(
        "The Manhattan range is the inscribed diamond of the Euclidean\n\
         circle, so every method completes fewer requests (≈ the 2/π area\n\
         ratio) and pickups read longer in L1 — but the COM ordering\n\
         (DemCOM/RamCOM over TOTA) survives the metric change, which is\n\
         the paper's §II-A generalisation claim."
    );
}
